package experiments

import (
	"sort"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/vecspace"
)

// Algorithm is a dimension-selection method under evaluation. Run returns
// the selected feature indices and measures the indexing (selection) time,
// the quantity plotted in Figs. 4(d), 5(d), 6(c,d) and 9(c).
type Algorithm struct {
	Name string
	Run  func(ds *Dataset, p int) ([]int, time.Duration, error)
}

// timedSelector adapts a baselines.Selector.
func timedSelector(s baselines.Selector) Algorithm {
	return Algorithm{
		Name: s.Name(),
		Run: func(ds *Dataset, p int) ([]int, time.Duration, error) {
			start := time.Now()
			sel, err := s.Select(ds.Index, ds.Delta, p)
			return sel, time.Since(start), err
		},
	}
}

// cappedSelector adapts a baselines.Selector whose cost is quadratic or
// worse in the candidate count m: the candidate set is truncated to the
// ds.BaselineCap features with the largest support before selection, and
// the chosen indices are mapped back. This mirrors the paper's Exp-6
// finding that these methods are the first to stop scaling (memory/time);
// without the cap they could not run at all on the full candidate set.
func cappedSelector(s baselines.Selector) Algorithm {
	return Algorithm{
		Name: s.Name(),
		Run: func(ds *Dataset, p int) ([]int, time.Duration, error) {
			start := time.Now()
			cap := ds.BaselineCap
			if cap <= 0 || cap >= ds.Index.P {
				sel, err := s.Select(ds.Index, ds.Delta, p)
				return sel, time.Since(start), err
			}
			// Top-cap candidates by support.
			type fs struct{ r, sup int }
			all := make([]fs, ds.Index.P)
			for r := 0; r < ds.Index.P; r++ {
				all[r] = fs{r, len(ds.Index.IF[r])}
			}
			sort.Slice(all, func(i, j int) bool {
				if all[i].sup != all[j].sup {
					return all[i].sup > all[j].sup
				}
				return all[i].r < all[j].r
			})
			kept := make([]int, cap)
			for i := 0; i < cap; i++ {
				kept[i] = all[i].r
			}
			sort.Ints(kept)
			sub := ds.Index.Subindex(kept)
			if p > cap {
				p = cap
			}
			sel, err := s.Select(sub, ds.Delta, p)
			if err != nil {
				return nil, 0, err
			}
			mapped := make([]int, len(sel))
			for i, local := range sel {
				mapped[i] = kept[local]
			}
			return mapped, time.Since(start), nil
		},
	}
}

// DSPMAlgorithm wraps core.DSPM. The δ matrix is treated as an input (as
// in the paper: every distance-aware method consumes the same
// dissimilarities), so indexing time covers the majorization iteration.
func DSPMAlgorithm(cfg core.Config) Algorithm {
	return Algorithm{
		Name: "DSPM",
		Run: func(ds *Dataset, p int) ([]int, time.Duration, error) {
			c := cfg
			c.P = p
			start := time.Now()
			res, err := core.DSPM(ds.Index, ds.Delta, c)
			if err != nil {
				return nil, 0, err
			}
			return res.Selected, time.Since(start), nil
		},
	}
}

// DSPMapAlgorithm wraps core.DSPMap with partition size b. Unlike DSPM it
// evaluates dissimilarities lazily inside partitions, which is what makes
// it scale; its indexing time therefore includes those MCS computations
// only.
func DSPMapAlgorithm(b int, seed int64, cfg core.Config) Algorithm {
	return Algorithm{
		Name: "DSPMap",
		Run: func(ds *Dataset, p int) ([]int, time.Duration, error) {
			c := cfg
			c.P = p
			dis := func(i, j int) float64 {
				if ds.Delta != nil {
					return ds.Delta[i][j]
				}
				return ds.Metric.DissimilarityBudget(ds.DB[i], ds.DB[j], ds.MCSOpt)
			}
			start := time.Now()
			res, err := core.DSPMap(ds.Index, dis, core.MapConfig{Core: c, B: b, Seed: seed})
			if err != nil {
				return nil, 0, err
			}
			return res.Selected, time.Since(start), nil
		},
	}
}

// StandardAlgorithms returns the eight algorithms of Exp-1/Exp-2 in the
// paper's ordering: DSPM, Original, Sample, SFS, MICI, MCFS, UDFS, NDFS.
func StandardAlgorithms(seed int64) []Algorithm {
	return []Algorithm{
		DSPMAlgorithm(core.Config{}),
		timedSelector(baselines.Original{}),
		timedSelector(baselines.Sample{Seed: seed}),
		cappedSelector(baselines.SFS{}),
		cappedSelector(baselines.MICI{}),
		cappedSelector(baselines.MCFS{}),
		cappedSelector(baselines.UDFS{}),
		cappedSelector(baselines.NDFS{Seed: seed}),
	}
}

// SelectionVectors builds the database-side binary vectors restricted to
// the selected features, in selection order.
func SelectionVectors(ds *Dataset, sel []int) []*vecspace.BitVector {
	sub := ds.Index.Subindex(sel)
	out := make([]*vecspace.BitVector, sub.N)
	for i := 0; i < sub.N; i++ {
		out[i] = sub.Vector(i)
	}
	return out
}
