package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/topk"
)

// Histogram is a fixed-bin distribution over [0,1] reported as fractions.
type Histogram struct {
	Bins []float64
}

// NewHistogram buckets the values into nbins equal bins over [0,1].
func NewHistogram(values []float64, nbins int) Histogram {
	h := Histogram{Bins: make([]float64, nbins)}
	if len(values) == 0 {
		return h
	}
	for _, v := range values {
		b := int(v * float64(nbins))
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Bins[b]++
	}
	for i := range h.Bins {
		h.Bins[i] /= float64(len(values))
	}
	return h
}

// EMD returns the earth-mover (1-Wasserstein) distance between two
// histograms with the same binning — used to verify that the DSPM
// distance distribution tracks the δ distribution more closely than
// Original's (the Fig. 1 claim).
func (h Histogram) EMD(o Histogram) float64 {
	carry, total := 0.0, 0.0
	for i := range h.Bins {
		carry += h.Bins[i] - o.Bins[i]
		if carry < 0 {
			total -= carry
		} else {
			total += carry
		}
	}
	return total / float64(len(h.Bins))
}

// Fig1Result holds the dissimilarity/distance distributions of Fig. 1.
type Fig1Result struct {
	// Within-database distributions (Fig. 1a).
	DeltaDB, DSPMDB, OriginalDB Histogram
	// Query-to-database distributions (Fig. 1b).
	DeltaQ, DSPMQ, OriginalQ Histogram
}

// Fig1 reproduces Fig. 1: the distribution of graph dissimilarity versus
// mapped Euclidean distance, for DSPM-selected dimensions and for the
// full frequent-subgraph space (Original).
func Fig1(ds *Dataset, p, nbins int) (*Fig1Result, error) {
	res, err := core.DSPM(ds.Index, ds.Delta, core.Config{P: p})
	if err != nil {
		return nil, err
	}
	all := make([]int, ds.Index.P)
	for i := range all {
		all[i] = i
	}
	dspmVecs := SelectionVectors(ds, res.Selected)
	origVecs := SelectionVectors(ds, all)

	n := len(ds.DB)
	var deltaVals, dspmVals, origVals []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			deltaVals = append(deltaVals, ds.Delta[i][j])
			dspmVals = append(dspmVals, dspmVecs[i].Distance(dspmVecs[j]))
			origVals = append(origVals, origVecs[i].Distance(origVecs[j]))
		}
	}
	out := &Fig1Result{
		DeltaDB:    NewHistogram(deltaVals, nbins),
		DSPMDB:     NewHistogram(dspmVals, nbins),
		OriginalDB: NewHistogram(origVals, nbins),
	}

	var dq, sq, oq []float64
	for qi, q := range ds.Queries {
		qd := mapQuery(ds, res.Selected, q)
		qo := mapQuery(ds, all, q)
		for i := 0; i < n; i++ {
			// Reuse the cached exact rankings for δ(q, gi).
			_ = qi
			sq = append(sq, qd.Distance(dspmVecs[i]))
			oq = append(oq, qo.Distance(origVecs[i]))
		}
		for _, item := range ds.ExactRankings[qi] {
			dq = append(dq, item.Score)
		}
	}
	out.DeltaQ = NewHistogram(dq, nbins)
	out.DSPMQ = NewHistogram(sq, nbins)
	out.OriginalQ = NewHistogram(oq, nbins)
	return out, nil
}

// Fig2Point is one x-position of Fig. 2: the total pairwise Jaccard
// correlation of the p selected features, for DSPM and random Sample.
type Fig2Point struct {
	P                      int
	DSPMScore, SampleScore float64
}

// Fig2 reproduces Fig. 2 over the given dimension counts.
func Fig2(ds *Dataset, ps []int, seed int64) ([]Fig2Point, error) {
	out := make([]Fig2Point, 0, len(ps))
	for _, p := range ps {
		if p > ds.Index.P {
			p = ds.Index.P
		}
		res, err := core.DSPM(ds.Index, ds.Delta, core.Config{P: p})
		if err != nil {
			return nil, err
		}
		sampleAlg := StandardAlgorithms(seed)[2] // Sample
		sample, _, err := sampleAlg.Run(ds, p)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig2Point{
			P:           p,
			DSPMScore:   ds.Index.TotalCorrelation(res.Selected),
			SampleScore: ds.Index.TotalCorrelation(sample),
		})
	}
	return out, nil
}

// AlgoSeries is one algorithm's curve in Figs. 4/5: relative quality per
// top-k value plus the indexing time.
type AlgoSeries struct {
	Name         string
	ByK          map[int]Quality // relative to the benchmark
	IndexingTime time.Duration
	Err          error // non-nil if the algorithm failed (recorded, not fatal)
}

// FigQuality reproduces Figs. 4 and 5: every algorithm evaluated at each
// top-k, relative to the benchmark. On the chemical dataset the benchmark
// is the fingerprint engine; on synthetic data (no fingerprint dictionary
// exists) the paper uses the best algorithm per measure, which
// RelativeToBest applies afterwards.
func FigQuality(ds *Dataset, algos []Algorithm, p int, ks []int, useFingerprint bool) []AlgoSeries {
	series := make([]AlgoSeries, 0, len(algos))
	bench := make(map[int]Quality, len(ks))
	if useFingerprint {
		for _, k := range ks {
			bench[k] = BenchmarkQuality(ds, k)
		}
	}
	for _, alg := range algos {
		s := AlgoSeries{Name: alg.Name, ByK: map[int]Quality{}}
		sel, dur, err := alg.Run(ds, p)
		if err != nil {
			s.Err = err
			series = append(series, s)
			continue
		}
		s.IndexingTime = dur
		for _, k := range ks {
			q, _ := EvaluateSelection(ds, sel, k)
			if useFingerprint {
				q = q.RelativeTo(bench[k])
			}
			s.ByK[k] = q
		}
		series = append(series, s)
	}
	return series
}

// RelativeToBest normalizes each measure at each k by the best value among
// the algorithms — the paper's benchmark for synthetic data.
func RelativeToBest(series []AlgoSeries, ks []int) {
	for _, k := range ks {
		var best Quality
		for _, s := range series {
			if s.Err != nil {
				continue
			}
			q := s.ByK[k]
			if q.Precision > best.Precision {
				best.Precision = q.Precision
			}
			if q.KendallTau > best.KendallTau {
				best.KendallTau = q.KendallTau
			}
			if q.RankDist > best.RankDist {
				best.RankDist = q.RankDist
			}
		}
		for i := range series {
			if series[i].Err != nil {
				continue
			}
			series[i].ByK[k] = series[i].ByK[k].RelativeTo(best)
		}
	}
}

// WriteSeries renders the Fig. 4/5 style table.
func WriteSeries(w io.Writer, title string, series []AlgoSeries, ks []int) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-10s %12s", "algorithm", "indexing")
	for _, k := range ks {
		fmt.Fprintf(w, "  p@%-4d tau@%-4d rd@%-4d", k, k, k)
	}
	fmt.Fprintln(w)
	for _, s := range series {
		if s.Err != nil {
			fmt.Fprintf(w, "%-10s failed: %v\n", s.Name, s.Err)
			continue
		}
		fmt.Fprintf(w, "%-10s %12s", s.Name, s.IndexingTime.Round(time.Millisecond))
		for _, k := range ks {
			q := s.ByK[k]
			fmt.Fprintf(w, "  %6.3f %7.3f %6.3f", q.Precision, q.KendallTau, q.RankDist)
		}
		fmt.Fprintln(w)
	}
}

// Fig7Result holds Exp-4's query-efficiency series: mean query time per
// query-size bucket for DSPM and Original, plus the exact engine.
type Fig7Result struct {
	Buckets  []string
	DSPM     []time.Duration
	Original []time.Duration
	Exact    []time.Duration
}

// Fig7 reproduces Fig. 7: query time by |V(q)| bucket. exactPerBucket
// bounds how many exact queries are timed per bucket (the exact engine is
// orders of magnitude slower).
func Fig7(ds *Dataset, p int, bucketBounds []int, exactPerBucket int) (*Fig7Result, error) {
	res, err := core.DSPM(ds.Index, ds.Delta, core.Config{P: p})
	if err != nil {
		return nil, err
	}
	all := make([]int, ds.Index.P)
	for i := range all {
		all[i] = i
	}
	dspmVecs := SelectionVectors(ds, res.Selected)
	origVecs := SelectionVectors(ds, all)

	nb := len(bucketBounds) - 1
	out := &Fig7Result{
		DSPM:     make([]time.Duration, nb),
		Original: make([]time.Duration, nb),
		Exact:    make([]time.Duration, nb),
	}
	counts := make([]int, nb)
	exactCounts := make([]int, nb)
	for b := 0; b < nb; b++ {
		out.Buckets = append(out.Buckets, fmt.Sprintf("%d-%d", bucketBounds[b], bucketBounds[b+1]))
	}
	bucketOf := func(n int) int {
		for b := 0; b < nb; b++ {
			if n >= bucketBounds[b] && n < bucketBounds[b+1] {
				return b
			}
		}
		if n >= bucketBounds[nb] {
			return nb - 1
		}
		return 0
	}
	for _, q := range ds.Queries {
		b := bucketOf(q.N())
		counts[b]++

		t0 := time.Now()
		qv := mapQuery(ds, res.Selected, q)
		topk.Mapped(dspmVecs, qv)
		out.DSPM[b] += time.Since(t0)

		t1 := time.Now()
		qo := mapQuery(ds, all, q)
		topk.Mapped(origVecs, qo)
		out.Original[b] += time.Since(t1)

		if exactCounts[b] < exactPerBucket {
			exactCounts[b]++
			t2 := time.Now()
			topk.Exact(ds.DB, q, ds.Metric, ds.MCSOpt)
			out.Exact[b] += time.Since(t2)
		}
	}
	for b := 0; b < nb; b++ {
		if counts[b] > 0 {
			out.DSPM[b] /= time.Duration(counts[b])
			out.Original[b] /= time.Duration(counts[b])
		}
		if exactCounts[b] > 0 {
			out.Exact[b] /= time.Duration(exactCounts[b])
		}
	}
	return out, nil
}

// Fig8Point is one partition size of Fig. 8: DSPMap quality and indexing
// time against the DSPM reference.
type Fig8Point struct {
	B              int
	DSPMapPrec     float64
	DSPMPrec       float64
	DSPMapIndexing time.Duration
	DSPMIndexing   time.Duration
}

// Fig8 reproduces Fig. 8: vary the partition size b and compare DSPMap
// against DSPM on precision and indexing time.
func Fig8(ds *Dataset, p, k int, bs []int, seed int64) ([]Fig8Point, error) {
	dspmAlg := DSPMAlgorithm(core.Config{})
	dspmSel, dspmTime, err := dspmAlg.Run(ds, p)
	if err != nil {
		return nil, err
	}
	dspmQ, _ := EvaluateSelection(ds, dspmSel, k)
	out := make([]Fig8Point, 0, len(bs))
	for _, b := range bs {
		alg := DSPMapAlgorithm(b, seed, core.Config{})
		sel, dur, err := alg.Run(ds, p)
		if err != nil {
			return nil, err
		}
		q, _ := EvaluateSelection(ds, sel, k)
		out = append(out, Fig8Point{
			B:              b,
			DSPMapPrec:     q.Precision,
			DSPMPrec:       dspmQ.Precision,
			DSPMapIndexing: dur,
			DSPMIndexing:   dspmTime,
		})
	}
	return out, nil
}

// Fig9Point is one database size of Fig. 9.
type Fig9Point struct {
	N              int
	Precision      map[string]float64 // relative precision per algorithm
	DSPMapQuery    time.Duration
	ExactQuery     time.Duration
	IndexingByAlgo map[string]time.Duration
}

// Fig9 reproduces Fig. 9 (scalability): for each database size build a
// fresh dataset, run DSPMap (b = n/20, as in the paper) plus the other
// algorithms, and record relative precision, query time and indexing
// time.
func Fig9(sizes []int, base Config, algos []Algorithm, p, k int, seed int64) ([]Fig9Point, error) {
	out := make([]Fig9Point, 0, len(sizes))
	for _, n := range sizes {
		cfg := base
		cfg.DBSize = n
		ds, err := BuildChemical(cfg)
		if err != nil {
			return nil, err
		}
		b := n / 20
		if b < 2 {
			b = 2
		}
		pt := Fig9Point{
			N:              n,
			Precision:      map[string]float64{},
			IndexingByAlgo: map[string]time.Duration{},
		}
		bench := BenchmarkQuality(ds, k)

		run := append([]Algorithm{DSPMapAlgorithm(b, seed, core.Config{})}, algos...)
		var dspmapSel []int
		for _, alg := range run {
			sel, dur, err := alg.Run(ds, p)
			if err != nil {
				continue // record only successful algorithms
			}
			q, _ := EvaluateSelection(ds, sel, k)
			pt.Precision[alg.Name] = q.RelativeTo(bench).Precision
			pt.IndexingByAlgo[alg.Name] = dur
			if alg.Name == "DSPMap" {
				dspmapSel = sel
			}
		}
		if dspmapSel != nil {
			_, timing := EvaluateSelection(ds, dspmapSel, k)
			pt.DSPMapQuery = timing.Total()
		}
		pt.ExactQuery = ExactQueryTiming(ds, 3)
		out = append(out, pt)
	}
	return out, nil
}

// SortedAlgoNames lists map keys deterministically for reporting.
func SortedAlgoNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
