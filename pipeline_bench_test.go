// Benchmarks for the composable query pipeline (PR 8): declarative
// filter pushdown versus the equivalent opaque Predicate closure, and
// the scan/aggregate path. BENCH_pr8.json records the pushdown/predicate
// ratio — the number the ISSUE gates on (>= 2x).
package repro

import (
	"context"
	"sync"
	"testing"

	"repro/graphdim"
	"repro/internal/dataset"
	"repro/internal/pipeline"
)

var (
	pipeBenchOnce sync.Once
	pipeBenchDB   []*graphdim.Graph
	pipeBenchIdx  *graphdim.Index
	pipeBenchErr  error
)

// pipelineBenchIndex builds the 8000-graph index the pipeline benches
// share (one build via sync.Once — mining dominates otherwise). The
// database is large enough that scan cost, not the fixed per-query VF2
// mapping, decides the pushdown/predicate ratio.
func pipelineBenchIndex(b *testing.B) ([]*graphdim.Graph, *graphdim.Index) {
	b.Helper()
	pipeBenchOnce.Do(func() {
		pipeBenchDB = dataset.Synthetic(dataset.SynthConfig{N: 8000, AvgEdges: 10, Labels: 6, Seed: 11})
		pipeBenchIdx, pipeBenchErr = graphdim.Build(pipeBenchDB, graphdim.Options{
			Dimensions:      48,
			Tau:             0.05,
			MaxPatternEdges: 3,
			MCSBudget:       500,
			Algorithm:       graphdim.DSPMap,
			Seed:            1,
		})
	})
	if pipeBenchErr != nil {
		b.Fatal(pipeBenchErr)
	}
	return pipeBenchDB, pipeBenchIdx
}

// BenchmarkPipelineFilterPushdown is the headline pipeline benchmark:
// the same selective structural constraint (vertex label 0 at least 5
// times) expressed as a declarative Filter — answered by the label
// posting index, so only matching ids are ever scored — versus an
// equivalent Predicate closure, which must visit every graph and count
// labels at scan time. The pushdown/predicate ratio is what
// BENCH_pr8.json records.
func BenchmarkPipelineFilterPushdown(b *testing.B) {
	db, idx := pipelineBenchIndex(b)
	filters := []*pipeline.Filter{{
		VertexLabels: []pipeline.LabelCount{{Label: 0, MinCount: 5}},
	}}
	pred := func(_ int, g *graphdim.Graph) bool {
		n := 0
		for v := 0; v < g.N(); v++ {
			if g.VertexLabel(v) == 0 {
				if n++; n >= 5 {
					return true
				}
			}
		}
		return false
	}
	matching := 0
	for _, g := range db {
		if pred(0, g) {
			matching++
		}
	}
	b.Logf("filter selects %d of %d graphs", matching, len(db))
	// A dense query (a database member, matching many dimensions): the
	// cost model sends the unfiltered scan to the flat path, which is
	// exactly the workload where a declarative filter's posting-list
	// restriction beats a closure that must visit every graph. (Sparse
	// queries are already sublinear for both paths — see
	// BenchmarkSearchSparse.)
	q := db[7]
	ctx := context.Background()
	for _, bc := range []struct {
		name string
		opt  graphdim.SearchOptions
	}{
		{"pushdown", graphdim.SearchOptions{K: 10, Filters: filters}},
		{"predicate", graphdim.SearchOptions{K: 10, Predicate: pred}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(ctx, q, bc.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineScanAggregate measures the non-search pipeline path
// through Collection.Query: a filtered count and a filtered group-by,
// fanned across 2 shards with partial-aggregate merge.
func BenchmarkPipelineScanAggregate(b *testing.B) {
	_, idx := pipelineBenchIndex(b)
	store := graphdim.NewStore(graphdim.StoreOptions{})
	defer store.Close()
	coll, err := store.CreateFromIndex("bench-pipe", idx, graphdim.CollectionOptions{Shards: 2})
	if err != nil {
		b.Fatal(err)
	}
	filter := pipeline.Stage{Filter: &pipeline.Filter{
		VertexLabels: []pipeline.LabelCount{{Label: 0, MinCount: 2}},
	}}
	ctx := context.Background()
	for _, bc := range []struct {
		name string
		p    *pipeline.Pipeline
	}{
		{"count", &pipeline.Pipeline{Stages: []pipeline.Stage{filter, {Count: &pipeline.Count{}}}}},
		{"group_by", &pipeline.Pipeline{Stages: []pipeline.Stage{filter, {GroupBy: &pipeline.GroupBy{Key: pipeline.KeyEdgeLabel}}}}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := coll.Query(ctx, bc.p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
