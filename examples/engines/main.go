// Command engines contrasts five top-k similarity engines on the same
// chemical workload: the paper's mapped-space search over DSPM dimensions,
// the filter-and-verify hybrid, the related-work alternatives (graph
// kernels and GED-prototype embedding), and exact MCS search — reproducing
// in one table why the paper's approach wins: near-exact quality at
// vector-scan latency, while kernels/prototypes pay heavy per-query graph
// computations.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/dataset"
	"repro/internal/ged"
	"repro/internal/graph"
	"repro/internal/gspan"
	"repro/internal/kernel"
	"repro/internal/mcs"
	"repro/internal/subiso"
	"repro/internal/topk"
	"repro/internal/vecspace"

	"repro/internal/core"
)

const (
	dbSize  = 80
	queries = 8
	k       = 8
)

func main() {
	all := dataset.Chemical(dataset.ChemConfig{N: dbSize + queries, Seed: 21})
	db, qs := all[:dbSize], all[dbSize:]
	metric := mcs.Delta2
	opt := mcs.Options{MaxNodes: 2000}

	// Ground truth.
	exact := make([]topk.Ranking, len(qs))
	exactStart := time.Now()
	for i, q := range qs {
		exact[i] = topk.Exact(db, q, metric, opt)
	}
	exactPerQuery := time.Since(exactStart) / time.Duration(len(qs))

	// DSPM dimensions.
	feats, err := gspan.Mine(db, gspan.Options{MinSupport: 4, MaxEdges: 6})
	if err != nil {
		log.Fatalf("mine: %v", err)
	}
	idx := vecspace.BuildIndex(len(db), feats)
	delta := metric.Matrix(db, opt)
	res, err := core.DSPM(idx, delta, core.Config{P: idx.P / 4, MaxIter: 60})
	if err != nil {
		log.Fatalf("dspm: %v", err)
	}
	sub := idx.Subindex(res.Selected)
	vecs := make([]*vecspace.BitVector, sub.N)
	for i := range vecs {
		vecs[i] = sub.Vector(i)
	}
	mapQ := func(q *graph.Graph) *vecspace.BitVector {
		v := vecspace.NewBitVector(len(res.Selected))
		for pos, r := range res.Selected {
			f := feats[r].Graph
			if f.N() <= q.N() && f.M() <= q.M() && subiso.Contains(q, f) {
				v.Set(pos)
			}
		}
		return v
	}

	// GED prototypes and kernels.
	pe := ged.SelectPrototypes(db, 16, ged.DefaultCosts(), 1)
	dbEmb := pe.EmbedAll(db)
	spk := kernel.ShortestPath{}

	type engine struct {
		name string
		run  func(qi int) []int
	}
	engines := []engine{
		{"mapped(DSPM)", func(qi int) []int {
			return topk.Mapped(vecs, mapQ(qs[qi])).TopK(k)
		}},
		{"verified(3k)", func(qi int) []int {
			return topk.Verified(db, vecs, qs[qi], mapQ(qs[qi]), k, 3, metric, opt).TopK(k)
		}},
		{"sp-kernel", func(qi int) []int {
			return topk.Similarity(len(db), func(i int) float64 {
				return kernel.Normalized(spk, qs[qi], db[i])
			}).TopK(k)
		}},
		{"ged-proto", func(qi int) []int {
			qe := pe.Embed(qs[qi])
			return topk.Similarity(len(db), func(i int) float64 {
				return -ged.Distance(qe, dbEmb[i])
			}).TopK(k)
		}},
	}

	fmt.Printf("%-14s %10s %12s\n", "engine", "precision", "query time")
	for _, e := range engines {
		start := time.Now()
		prec := 0.0
		for qi := range qs {
			prec += topk.Precision(e.run(qi), exact[qi], k)
		}
		perQuery := time.Since(start) / time.Duration(len(qs))
		fmt.Printf("%-14s %10.3f %12v\n", e.name, prec/float64(len(qs)), perQuery.Round(time.Microsecond))
	}
	fmt.Printf("%-14s %10.3f %12v\n", "exact(MCS)", 1.0, exactPerQuery.Round(time.Microsecond))
}
