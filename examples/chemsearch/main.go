// Command chemsearch is a realistic compound-search workflow on the
// graphdim public API: build an index over a chemical database, persist it
// to disk (compact v2 binary format), reload it, and compare the mapped,
// verified and exact engines on the same queries — the scenario that
// motivates the paper (PubChem-style similarity search without per-query
// MCS computation) plus the accuracy/latency dial the Search API exposes.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/graphdim"
	"repro/internal/dataset"
)

func main() {
	db := dataset.Chemical(dataset.ChemConfig{N: 120, Seed: 7})
	queries := dataset.Chemical(dataset.ChemConfig{N: 5, Seed: 8})
	ctx := context.Background()

	fmt.Printf("building index over %d compounds...\n", len(db))
	start := time.Now()
	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions: 60,
		Tau:        0.08,
		MCSBudget:  20000,
		Algorithm:  graphdim.DSPMap, // linear-time indexing
		Seed:       1,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("indexed in %v; %d dimensions selected\n", time.Since(start).Round(time.Millisecond), len(idx.Dimensions()))

	// Persist and reload — a production index is built once, served many
	// times.
	path := filepath.Join(os.TempDir(), "chemsearch.index.gdx")
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	n, err := idx.WriteTo(f)
	if err != nil {
		log.Fatalf("save: %v", err)
	}
	f.Close()
	f, err = os.Open(path)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	idx, err = graphdim.ReadIndex(f)
	f.Close()
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	fmt.Printf("index round-tripped through %s (%d bytes, v2 binary)\n", path, n)

	// Serve queries; compare the engines against exact MCS ground truth.
	const k = 5
	for qi, q := range queries {
		exact, err := idx.Search(ctx, q, graphdim.SearchOptions{K: k, Engine: graphdim.EngineExact})
		if err != nil {
			log.Fatalf("exact: %v", err)
		}
		inExact := map[int]bool{}
		for _, r := range exact.Results {
			inExact[r.ID] = true
		}

		fmt.Printf("query %d (%d/%d dimensions matched):\n", qi, exact.Matched.Count(), exact.Matched.Len())
		for _, opt := range []graphdim.SearchOptions{
			{K: k},
			{K: k, Engine: graphdim.EngineVerified, VerifyFactor: 3},
		} {
			res, err := idx.Search(ctx, q, opt)
			if err != nil {
				log.Fatalf("%v: %v", opt.Engine, err)
			}
			hits := 0
			for _, r := range res.Results {
				if inExact[r.ID] {
					hits++
				}
			}
			fmt.Printf("  %-8v %-10v %d candidates scored, precision %d/%d (exact took %v)\n",
				res.Engine, res.Elapsed.Round(time.Microsecond), res.Candidates,
				hits, k, exact.Elapsed.Round(time.Millisecond))
		}
	}
	os.Remove(path)
}
