// Command chemsearch is a realistic compound-search workflow on the
// graphdim public API: build an index over a chemical database, persist it
// to disk, reload it, and compare mapped-space answers against the exact
// MCS-based ranking — the scenario that motivates the paper (PubChem-style
// similarity search without per-query MCS computation).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/graphdim"
	"repro/internal/dataset"
)

func main() {
	db := dataset.Chemical(dataset.ChemConfig{N: 120, Seed: 7})
	queries := dataset.Chemical(dataset.ChemConfig{N: 5, Seed: 8})

	fmt.Printf("building index over %d compounds...\n", len(db))
	start := time.Now()
	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions: 60,
		Tau:        0.08,
		MCSBudget:  20000,
		Algorithm:  graphdim.DSPMap, // linear-time indexing
		Seed:       1,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("indexed in %v; %d dimensions selected\n", time.Since(start).Round(time.Millisecond), len(idx.Dimensions()))

	// Persist and reload — a production index is built once, served many
	// times.
	path := filepath.Join(os.TempDir(), "chemsearch.index.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		log.Fatalf("save: %v", err)
	}
	f.Close()
	f, err = os.Open(path)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	idx, err = graphdim.ReadIndex(f)
	f.Close()
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	fmt.Printf("index round-tripped through %s\n", path)

	// Serve queries; compare the fast mapped answer against exact MCS.
	const k = 5
	for qi, q := range queries {
		t0 := time.Now()
		fast, err := idx.TopK(q, k)
		if err != nil {
			log.Fatalf("topk: %v", err)
		}
		fastTime := time.Since(t0)

		t1 := time.Now()
		exact, err := idx.TopKExact(q, k)
		if err != nil {
			log.Fatalf("exact: %v", err)
		}
		exactTime := time.Since(t1)

		inExact := map[int]bool{}
		for _, r := range exact {
			inExact[r.ID] = true
		}
		hits := 0
		for _, r := range fast {
			if inExact[r.ID] {
				hits++
			}
		}
		fmt.Printf("query %d: mapped %-10v exact %-12v precision %d/%d\n",
			qi, fastTime.Round(time.Microsecond), exactTime.Round(time.Millisecond), hits, k)
	}
	os.Remove(path)
}
