// Command quickstart is the smallest end-to-end use of the graphdim
// public API: generate a toy molecule database, build a graph-dimension
// index with DSPM, answer a top-k similarity query in the mapped space,
// and grow the index online with Add — no re-mining, no re-run of DSPM.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/graphdim"
	"repro/internal/dataset"
)

func main() {
	// A small chemical-compound-like database (deterministic).
	db := dataset.Chemical(dataset.ChemConfig{N: 60, Seed: 42})
	queries := dataset.Chemical(dataset.ChemConfig{N: 3, Seed: 43})
	ctx := context.Background()

	fmt.Printf("database: %d graphs, %d-%d vertices\n", len(db), minN(db), maxN(db))

	// Build the index: mine frequent subgraphs (tau = 10%), select 40
	// dimensions with DSPM, map the database.
	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions: 40,
		Tau:        0.10,
		MCSBudget:  20000,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("selected %d subgraph dimensions; top dimension:\n%s\n",
		len(idx.Dimensions()), idx.Dimensions()[0])

	// Query the mapped space.
	for qi, q := range queries {
		res, err := idx.Search(ctx, q, graphdim.SearchOptions{K: 5})
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		fmt.Printf("query %d (%d vertices, %d/%d dims matched): top-5 =",
			qi, q.N(), res.Matched.Count(), res.Matched.Len())
		for _, r := range res.Results {
			fmt.Printf(" g%d(d=%.3f)", r.ID, r.Distance)
		}
		fmt.Println()

		// Cross-check the best hit with the exact MCS dissimilarity.
		d := idx.Dissimilarity(q, idx.Graph(res.Results[0].ID))
		fmt.Printf("  exact delta2 to best hit: %.3f\n", d)
	}

	// Grow the index online: the queries become part of the database via
	// a cheap VF2 mapping pass onto the existing dimensions.
	ids, err := idx.Add(queries...)
	if err != nil {
		log.Fatalf("add: %v", err)
	}
	fmt.Printf("added %d graphs as ids %v; size %d, stale ratio %.3f\n",
		len(ids), ids, idx.Size(), idx.StaleRatio())
	res, err := idx.Search(ctx, queries[0], graphdim.SearchOptions{K: 1})
	if err != nil {
		log.Fatalf("query after add: %v", err)
	}
	fmt.Printf("self query after add: g%d at distance %.3f\n",
		res.Results[0].ID, res.Results[0].Distance)
}

func minN(gs []*graphdim.Graph) int {
	m := gs[0].N()
	for _, g := range gs {
		if g.N() < m {
			m = g.N()
		}
	}
	return m
}

func maxN(gs []*graphdim.Graph) int {
	m := gs[0].N()
	for _, g := range gs {
		if g.N() > m {
			m = g.N()
		}
	}
	return m
}
