// Command quickstart is the smallest end-to-end use of the graphdim
// public API: generate a toy molecule database, build a graph-dimension
// index with DSPM, and answer a top-k similarity query in the mapped
// space.
package main

import (
	"fmt"
	"log"

	"repro/graphdim"
	"repro/internal/dataset"
)

func main() {
	// A small chemical-compound-like database (deterministic).
	db := dataset.Chemical(dataset.ChemConfig{N: 60, Seed: 42})
	queries := dataset.Chemical(dataset.ChemConfig{N: 3, Seed: 43})

	fmt.Printf("database: %d graphs, %d-%d vertices\n", len(db), minN(db), maxN(db))

	// Build the index: mine frequent subgraphs (tau = 5%), select 40
	// dimensions with DSPM, map the database.
	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions: 40,
		Tau:        0.10,
		MCSBudget:  20000,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("selected %d subgraph dimensions; top dimension:\n%s\n",
		len(idx.Dimensions()), idx.Dimensions()[0])

	// Query the mapped space.
	for qi, q := range queries {
		results, err := idx.TopK(q, 5)
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		fmt.Printf("query %d (%d vertices): top-5 =", qi, q.N())
		for _, r := range results {
			fmt.Printf(" g%d(d=%.3f)", r.ID, r.Distance)
		}
		fmt.Println()

		// Cross-check the best hit with the exact MCS dissimilarity.
		d := idx.Dissimilarity(q, idx.Graph(results[0].ID))
		fmt.Printf("  exact delta2 to best hit: %.3f\n", d)
	}
}

func minN(gs []*graphdim.Graph) int {
	m := gs[0].N()
	for _, g := range gs {
		if g.N() < m {
			m = g.N()
		}
	}
	return m
}

func maxN(gs []*graphdim.Graph) int {
	m := gs[0].N()
	for _, g := range gs {
		if g.N() > m {
			m = g.N()
		}
	}
	return m
}
