// Command scalability contrasts the two index-construction algorithms of
// the paper on growing databases: DSPM, whose cost is driven by the full
// O(n²) dissimilarity matrix, and DSPMap, whose partition-based cost grows
// linearly in n (Theorem 5.3). It prints one row per database size.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/graphdim"
	"repro/internal/dataset"
)

func main() {
	fmt.Printf("%8s %12s %12s\n", "|DG|", "DSPM", "DSPMap")
	for _, n := range []int{40, 80, 160, 320} {
		db := dataset.Chemical(dataset.ChemConfig{N: n, Seed: 11})

		dspm := timeBuild(db, graphdim.DSPM)
		dspmap := timeBuild(db, graphdim.DSPMap)
		fmt.Printf("%8d %12v %12v\n", n, dspm.Round(time.Millisecond), dspmap.Round(time.Millisecond))
	}
	fmt.Println("\nDSPM grows quadratically with |DG| (full dissimilarity matrix);")
	fmt.Println("DSPMap stays near-linear (per-partition dissimilarities only).")
}

func timeBuild(db []*graphdim.Graph, algo graphdim.Algorithm) time.Duration {
	start := time.Now()
	_, err := graphdim.Build(db, graphdim.Options{
		Dimensions:    40,
		Tau:           0.08,
		MCSBudget:     5000,
		Algorithm:     algo,
		PartitionSize: 20,
		Seed:          2,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	return time.Since(start)
}
