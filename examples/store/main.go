// Command store demonstrates the graphdim.Store management layer: a named
// collection sharded across parallel indexes, fan-out search with a
// global top-k merge, online growth that drives shards stale, an explicit
// compaction (the online rebuild path), and Save/OpenStore persistence —
// the serving-system shape cmd/gserve exposes over HTTP.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/graphdim"
	"repro/internal/dataset"
)

func main() {
	ctx := context.Background()
	db := dataset.Chemical(dataset.ChemConfig{N: 60, Seed: 42})
	queries := dataset.Chemical(dataset.ChemConfig{N: 2, Seed: 43})

	// A store without a background compactor; Compact below runs it by
	// hand so the output is deterministic.
	store := graphdim.NewStore(graphdim.StoreOptions{
		Compaction: graphdim.CompactionPolicy{StaleThreshold: 0.3},
	})
	defer store.Close()

	// One build over the full database, split across 4 shards: every
	// shard starts in the same dimension space, so the sharded search is
	// exactly equivalent to an unsharded index.
	coll, err := store.Create(ctx, "molecules", db, graphdim.CollectionOptions{
		Shards:   4,
		Build:    graphdim.Options{Dimensions: 40, Tau: 0.10, MCSBudget: 20000},
		Defaults: graphdim.SearchOptions{K: 5},
	})
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	fmt.Printf("collection %q: %d graphs in %d shards\n", coll.Name(), coll.Size(), coll.Shards())

	// Fan-out search; K comes from the collection defaults.
	for qi, q := range queries {
		res, err := coll.Search(ctx, q, graphdim.SearchOptions{})
		if err != nil {
			log.Fatalf("search: %v", err)
		}
		fmt.Printf("query %d: top-%d =", qi, len(res.Results))
		for _, r := range res.Results {
			fmt.Printf(" g%d(d=%.3f)", r.ID, r.Distance)
		}
		fmt.Println()
	}

	// Grow the collection past the stale threshold: new graphs hash onto
	// their shards and are mapped in parallel, no re-mining.
	extra := dataset.Chemical(dataset.ChemConfig{N: 40, Seed: 77})
	ids, err := coll.Add(ctx, extra...)
	if err != nil {
		log.Fatalf("add: %v", err)
	}
	fmt.Printf("added ids %d..%d; stale ratios now %.2f\n", ids[0], ids[len(ids)-1], coll.StaleRatios())

	// Compact: each stale shard is rebuilt off to the side (fresh mining +
	// dimension selection over its live graphs) and swapped in atomically;
	// searches keep serving throughout.
	n, err := coll.Compact(ctx, false)
	if err != nil {
		log.Fatalf("compact: %v", err)
	}
	fmt.Printf("compacted %d shards; stale ratios %.2f\n", n, coll.StaleRatios())

	// Persist and reload the whole store.
	dir := filepath.Join(os.TempDir(), "graphdim-store-example")
	defer os.RemoveAll(dir)
	if err := store.Save(dir); err != nil {
		log.Fatalf("save: %v", err)
	}
	loaded, err := graphdim.OpenStore(dir, graphdim.StoreOptions{})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer loaded.Close()
	lcoll, _ := loaded.Collection("molecules")
	res, err := lcoll.Search(ctx, extra[0], graphdim.SearchOptions{K: 1})
	if err != nil {
		log.Fatalf("search after reload: %v", err)
	}
	fmt.Printf("reloaded from %s: self query hits g%d at distance %.3f\n",
		filepath.Base(dir), res.Results[0].ID, res.Results[0].Distance)
}
