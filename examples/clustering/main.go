// Command clustering demonstrates the paper's closing claim that the
// identified structural dimension applies beyond top-k search: it clusters
// a graph database by k-means over the mapped vectors and measures how
// well the clusters recover the generator's latent scaffold families.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/graphdim"
	"repro/internal/dataset"
	"repro/internal/linalg"
)

func main() {
	// Generate compounds from 4 scaffold families, keeping the family of
	// each compound as ground truth. Families are interleaved via separate
	// generator runs with 1 scaffold each.
	const perFamily, families = 30, 4
	var db []*graphdim.Graph
	var truth []int
	for fam := 0; fam < families; fam++ {
		part := dataset.Chemical(dataset.ChemConfig{
			N:              perFamily,
			Scaffolds:      1,
			ScaffoldOffset: fam, // distinct ring-system template per family
			Seed:           int64(1000 * (fam + 1)),
		})
		db = append(db, part...)
		for range part {
			truth = append(truth, fam)
		}
	}

	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions: 50,
		Tau:        0.08,
		MCSBudget:  20000,
		Algorithm:  graphdim.DSPMap,
	})
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	// Mapped vectors as rows of a dense matrix for k-means.
	dims := idx.Dimensions()
	x := linalg.NewMatrix(len(db), len(dims))
	for i, g := range db {
		for j, f := range dims {
			if graphdim.Contains(g, f) {
				x.Set(i, j, 1)
			}
		}
	}
	assign, _ := linalg.KMeans(x, families, 100, rand.New(rand.NewSource(3)))

	// Cluster purity: for each cluster, the fraction belonging to its
	// majority family.
	counts := make([][]int, families)
	for c := range counts {
		counts[c] = make([]int, families)
	}
	for i, c := range assign {
		counts[c][truth[i]]++
	}
	correct, total := 0, 0
	for c := 0; c < families; c++ {
		best, sum := 0, 0
		for f := 0; f < families; f++ {
			if counts[c][f] > best {
				best = counts[c][f]
			}
			sum += counts[c][f]
		}
		correct += best
		total += sum
		fmt.Printf("cluster %d: size %2d, family histogram %v\n", c, sum, counts[c])
	}
	purity := float64(correct) / float64(total)
	fmt.Printf("clustering purity over %d compounds: %.2f (random baseline %.2f)\n",
		total, purity, 1.0/families)
}
