// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6), plus ablation benches for the optimization
// techniques DESIGN.md calls out. Each BenchmarkFigN prints the same
// series the paper plots (at harness scale; see EXPERIMENTS.md) — run with
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/graphdim"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/gspan"
	"repro/internal/mcs"
	"repro/internal/subiso"
	"repro/internal/topk"
	"repro/internal/vecspace"
)

// benchConfig is the shared harness scale: large enough that the paper's
// shapes (who wins, by what factor) are visible, small enough that the
// whole suite runs in minutes.
func benchConfig() experiments.Config {
	return experiments.Config{
		DBSize:      100,
		QueryCount:  20,
		Tau:         0.05,
		MaxEdges:    6,
		MCSBudget:   2000,
		BaselineCap: 200,
		Seed:        1,
	}
}

var (
	benchOnce sync.Once
	benchChem *experiments.Dataset
	benchErr  error
)

func chemBench(b *testing.B) *experiments.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchChem, benchErr = experiments.BuildChemical(benchConfig())
	})
	if benchErr != nil {
		b.Fatalf("building benchmark dataset: %v", benchErr)
	}
	return benchChem
}

func benchP(ds *experiments.Dataset) int {
	p := ds.Index.P / 4
	if p < 10 {
		p = 10
	}
	return p
}

// BenchmarkFig1 regenerates Fig. 1: the dissimilarity/distance
// distribution histograms for DSPM and Original.
func BenchmarkFig1(b *testing.B) {
	ds := chemBench(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(ds, benchP(ds), 20)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Fig1(a) EMD to delta: DSPM=%.4f Original=%.4f",
				res.DSPMDB.EMD(res.DeltaDB), res.OriginalDB.EMD(res.DeltaDB))
			b.Logf("Fig1(b) EMD to delta: DSPM=%.4f Original=%.4f",
				res.DSPMQ.EMD(res.DeltaQ), res.OriginalQ.EMD(res.DeltaQ))
		}
	}
}

// BenchmarkFig2 regenerates Fig. 2: total feature-correlation score of the
// selected dimensions, DSPM vs Sample, across p.
func BenchmarkFig2(b *testing.B) {
	ds := chemBench(b)
	m := ds.Index.P
	ps := []int{m / 5, 2 * m / 5, 3 * m / 5}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig2(ds, ps, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pt := range pts {
				b.Logf("Fig2 p=%d: DSPM=%.1f Sample=%.1f", pt.P, pt.DSPMScore, pt.SampleScore)
			}
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4 (real dataset): precision, Kendall tau
// and rank distance vs top-k for all eight algorithms, relative to the
// fingerprint benchmark, plus indexing times.
func BenchmarkFig4(b *testing.B) {
	ds := chemBench(b)
	ks := []int{2, 4, 6, 8, 10}
	for i := 0; i < b.N; i++ {
		series := experiments.FigQuality(ds, experiments.StandardAlgorithms(1), benchP(ds), ks, true)
		if i == 0 {
			for _, s := range series {
				if s.Err != nil {
					b.Logf("Fig4 %-8s failed: %v", s.Name, s.Err)
					continue
				}
				q := s.ByK[10]
				b.Logf("Fig4 %-8s k=10: prec=%.3f tau=%.3f rd=%.3f indexing=%v",
					s.Name, q.Precision, q.KendallTau, q.RankDist, s.IndexingTime)
			}
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5 (synthetic dataset), normalized to the
// best algorithm per measure (the paper's synthetic benchmark).
func BenchmarkFig5(b *testing.B) {
	cfg := benchConfig()
	cfg.DBSize = 60
	cfg.QueryCount = 12
	ds, err := experiments.BuildSynthetic(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ks := []int{2, 4, 6}
	for i := 0; i < b.N; i++ {
		series := experiments.FigQuality(ds, experiments.StandardAlgorithms(1), benchP(ds), ks, false)
		experiments.RelativeToBest(series, ks)
		if i == 0 {
			for _, s := range series {
				if s.Err != nil {
					b.Logf("Fig5 %-8s failed: %v", s.Name, s.Err)
					continue
				}
				b.Logf("Fig5 %-8s k=4: prec=%.3f indexing=%v", s.Name, s.ByK[4].Precision, s.IndexingTime)
			}
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6: synthetic precision and indexing time
// while varying graph size and density.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, edges := range []int{12, 16, 20} {
			cfg := benchConfig()
			cfg.DBSize = 40
			cfg.QueryCount = 8
			cfg.Synth.AvgEdges = edges
			ds, err := experiments.BuildSynthetic(cfg)
			if err != nil {
				b.Fatal(err)
			}
			algos := experiments.StandardAlgorithms(1)
			series := experiments.FigQuality(ds, []experiments.Algorithm{algos[0], algos[2]}, benchP(ds), []int{4}, false)
			if i == 0 {
				for _, s := range series {
					if s.Err == nil {
						b.Logf("Fig6 edges=%d %-8s prec=%.3f indexing=%v", edges, s.Name, s.ByK[4].Precision, s.IndexingTime)
					}
				}
			}
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7: query time by query size, DSPM vs
// Original vs Exact.
func BenchmarkFig7(b *testing.B) {
	ds := chemBench(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(ds, benchP(ds), []int{10, 14, 18, 21}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for bk := range res.Buckets {
				b.Logf("Fig7 |V(q)|=%s: DSPM=%v Original=%v Exact=%v",
					res.Buckets[bk], res.DSPM[bk], res.Original[bk], res.Exact[bk])
			}
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8: DSPMap precision and indexing time vs
// partition size, against the DSPM reference.
func BenchmarkFig8(b *testing.B) {
	ds := chemBench(b)
	n := len(ds.DB)
	bs := []int{n / 8, n / 4, n / 2}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8(ds, benchP(ds), 4, bs, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pt := range pts {
				b.Logf("Fig8 b=%d: DSPMap prec=%.3f (DSPM %.3f) indexing=%v (DSPM %v)",
					pt.B, pt.DSPMapPrec, pt.DSPMPrec, pt.DSPMapIndexing, pt.DSPMIndexing)
			}
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9: scalability with |DG| — DSPMap
// precision/query/indexing against the other algorithms and the exact
// engine.
func BenchmarkFig9(b *testing.B) {
	cfg := benchConfig()
	cfg.QueryCount = 8
	algos := experiments.StandardAlgorithms(1)
	kept := []experiments.Algorithm{algos[0], algos[2]} // DSPM, Sample
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig9([]int{40, 80}, cfg, kept, 20, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pt := range pts {
				b.Logf("Fig9 |DG|=%d: DSPMap query=%v exact query=%v DSPMap indexing=%v",
					pt.N, pt.DSPMapQuery, pt.ExactQuery, pt.IndexingByAlgo["DSPMap"])
			}
		}
	}
}

// ---- Ablation benches (DESIGN.md §5) ----

// BenchmarkAblationUpdateC compares the simplified Theorem 5.1 weight
// update against the naive Eq. (7) computation.
func BenchmarkAblationUpdateC(b *testing.B) {
	ds := chemBench(b)
	for _, naive := range []bool{false, true} {
		name := "simplified"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DSPM(ds.Index, ds.Delta, core.Config{P: benchP(ds), MaxIter: 5, NaiveUpdateC: naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationComputeObj compares the inverted-list Algorithm 4
// against a dense objective computation.
func BenchmarkAblationComputeObj(b *testing.B) {
	ds := chemBench(b)
	for _, dense := range []bool{false, true} {
		name := "invertedlist"
		if dense {
			name = "dense"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DSPM(ds.Index, ds.Delta, core.Config{P: benchP(ds), MaxIter: 5, DenseObjective: dense}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationUpdateXbar compares the IF-list Algorithm 3 against the
// dense Guttman transform.
func BenchmarkAblationUpdateXbar(b *testing.B) {
	ds := chemBench(b)
	for _, dense := range []bool{false, true} {
		name := "iflist"
		if dense {
			name = "dense"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DSPM(ds.Index, ds.Delta, core.Config{P: benchP(ds), MaxIter: 5, DenseXbar: dense}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPartition compares Algorithm 7's similarity-driven
// partitioning against random partitioning inside DSPMap, reporting the
// resulting precision as well as cost.
func BenchmarkAblationPartition(b *testing.B) {
	ds := chemBench(b)
	dis := func(i, j int) float64 { return ds.Delta[i][j] }
	for _, random := range []bool{false, true} {
		name := "similarity"
		if random {
			name = "random"
		}
		b.Run(name, func(b *testing.B) {
			var prec float64
			for i := 0; i < b.N; i++ {
				res, err := core.DSPMap(ds.Index, dis, core.MapConfig{
					Core: core.Config{P: benchP(ds), MaxIter: 10},
					B:    len(ds.DB) / 4, Seed: 1, RandomPartition: random,
				})
				if err != nil {
					b.Fatal(err)
				}
				q, _ := experiments.EvaluateSelection(ds, res.Selected, 4)
				prec = q.Precision
			}
			b.ReportMetric(prec, "precision")
		})
	}
}

// ---- Component microbenches ----

// BenchmarkMine measures gSpan on the benchmark database.
func BenchmarkMine(b *testing.B) {
	ds := chemBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := gspan.Mine(ds.DB, gspan.Options{MinSupport: 8, MaxEdges: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCS measures one budgeted MCS dissimilarity on molecule-sized
// graphs.
func BenchmarkMCS(b *testing.B) {
	db := dataset.Chemical(dataset.ChemConfig{N: 2, Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mcs.Delta2.DissimilarityBudget(db[0], db[1], mcs.Options{MaxNodes: 3000})
	}
}

// BenchmarkVF2 measures a single feature-containment test.
func BenchmarkVF2(b *testing.B) {
	ds := chemBench(b)
	pattern := ds.Features[len(ds.Features)/2].Graph
	target := ds.DB[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subiso.Contains(target, pattern)
	}
}

// BenchmarkMappedQuery measures the online query path (feature matching +
// vector scan), the latency plotted in Fig. 7(a).
func BenchmarkMappedQuery(b *testing.B) {
	ds := chemBench(b)
	res, err := core.DSPM(ds.Index, ds.Delta, core.Config{P: benchP(ds)})
	if err != nil {
		b.Fatal(err)
	}
	sub := ds.Index.Subindex(res.Selected)
	vecs := make([]*vecspace.BitVector, sub.N)
	for i := range vecs {
		vecs[i] = sub.Vector(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Queries[i%len(ds.Queries)]
		qv := vecspace.NewBitVector(len(res.Selected))
		for pos, r := range res.Selected {
			f := ds.Features[r].Graph
			if f.N() <= q.N() && f.M() <= q.M() && subiso.Contains(q, f) {
				qv.Set(pos)
			}
		}
		topk.Mapped(vecs, qv)
	}
}

// BenchmarkExactQuery measures the exact MCS-based engine, the comparator
// of Fig. 7(b) — expect 3+ orders of magnitude above BenchmarkMappedQuery.
func BenchmarkExactQuery(b *testing.B) {
	ds := chemBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Queries[i%len(ds.Queries)]
		topk.Exact(ds.DB, q, ds.Metric, ds.MCSOpt)
	}
}

// BenchmarkDSPMIterations measures the full DSPM majorization loop.
func BenchmarkDSPMIterations(b *testing.B) {
	ds := chemBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.DSPM(ds.Index, ds.Delta, core.Config{P: benchP(ds)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSPMap measures DSPMap end to end (with cached dissimilarity).
func BenchmarkDSPMap(b *testing.B) {
	ds := chemBench(b)
	dis := func(i, j int) float64 { return ds.Delta[i][j] }
	for i := 0; i < b.N; i++ {
		if _, err := core.DSPMap(ds.Index, dis, core.MapConfig{
			Core: core.Config{P: benchP(ds)}, B: len(ds.DB) / 4, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

var sinkString string

// BenchmarkFingerprint measures the benchmark engine's fingerprint
// computation (not part of the paper's figures; calibration only).
func BenchmarkFingerprint(b *testing.B) {
	ds := chemBench(b)
	for i := 0; i < b.N; i++ {
		g := ds.DB[i%len(ds.DB)]
		sinkString = fmt.Sprint(g.M())
	}
}

// ---- Concurrency benches ----

// BenchmarkBuildWorkers measures the end-to-end offline build
// (mining + MCS matrix + DSPM + vector materialization) on the synthetic
// dataset at Workers: 1 versus Workers: NumCPU. On a multi-core machine
// the parallel build should approach a linear speedup: the run time is
// dominated by the O(n²) independent MCS searches.
func BenchmarkBuildWorkers(b *testing.B) {
	db := dataset.Synthetic(dataset.SynthConfig{N: 60, AvgEdges: 12, Labels: 8, Seed: 5})
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := graphdim.Build(db, graphdim.Options{
					Dimensions: 30,
					Tau:        0.1,
					MCSBudget:  2000,
					Workers:    workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopKBatchWorkers measures the online batch path at 1 versus
// NumCPU workers fanning 32 queries over one shared index.
func BenchmarkTopKBatchWorkers(b *testing.B) {
	db := dataset.Synthetic(dataset.SynthConfig{N: 60, AvgEdges: 12, Labels: 8, Seed: 5})
	queries := db[:32]
	for _, workers := range []int{1, runtime.NumCPU()} {
		idx, err := graphdim.Build(db, graphdim.Options{
			Dimensions: 30,
			Tau:        0.1,
			MCSBudget:  2000,
			Workers:    workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := idx.TopKBatch(queries, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchEngines measures one query through each Search engine on
// the same index — the latency side of the accuracy/latency dial the v2
// API exposes (mapped ≪ verified ≪ exact).
func BenchmarkSearchEngines(b *testing.B) {
	db := dataset.Synthetic(dataset.SynthConfig{N: 60, AvgEdges: 12, Labels: 8, Seed: 5})
	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions: 30,
		Tau:        0.1,
		MCSBudget:  2000,
	})
	if err != nil {
		b.Fatal(err)
	}
	q := db[7]
	ctx := context.Background()
	for _, opt := range []graphdim.SearchOptions{
		{K: 10, Engine: graphdim.EngineMapped},
		{K: 10, Engine: graphdim.EngineVerified, VerifyFactor: 3},
		{K: 10, Engine: graphdim.EngineExact},
	} {
		b.Run(opt.Engine.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(ctx, q, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchSparse is the headline posting-list benchmark: one
// mapped top-10 query against a 3000-graph index, pruned versus flat
// (SearchOptions.NoPrune), on the workload pruning targets — a sparse
// query whose DimensionBits touch few dimensions — plus a dense
// database graph for honesty (the cost model falls back to the flat
// scan there, so the two sub-benchmarks converge). The pruned/sparse
// over flat/sparse ratio is the speedup BENCH_pr4.json records.
func BenchmarkSearchSparse(b *testing.B) {
	db := dataset.Synthetic(dataset.SynthConfig{N: 3000, AvgEdges: 10, Labels: 6, Seed: 11})
	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions:      48,
		Tau:             0.05,
		MaxPatternEdges: 3,
		MCSBudget:       500,
		Algorithm:       graphdim.DSPMap,
		Seed:            1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// The sparse query: a small unseen graph over a disjoint label range,
	// matching none of the index dimensions — the extreme the posting
	// index makes O(k) instead of O(n).
	sparse := graphdim.NewGraph(0)
	sv0 := sparse.AddVertex(40)
	sv1 := sparse.AddVertex(41)
	sv2 := sparse.AddVertex(42)
	sparse.MustAddEdge(sv0, sv1, 7)
	sparse.MustAddEdge(sv1, sv2, 7)
	// db[0] matches dimensions whose posting mass trips the cost model,
	// so its pruned and flat sub-benchmarks run the identical scan.
	dense := db[0]
	ctx := context.Background()
	for _, bc := range []struct {
		name    string
		q       *graphdim.Graph
		noPrune bool
	}{
		{"sparse/pruned", sparse, false},
		{"sparse/flat", sparse, true},
		{"dense/pruned", dense, false},
		{"dense/flat", dense, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(ctx, bc.q, graphdim.SearchOptions{K: 10, NoPrune: bc.noPrune}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCacheHit measures the generation-keyed query cache: the same
// query against a cached and an uncached collection. The hit path skips
// the VF2 mapping and the scan entirely — expect >= 10x.
func BenchmarkCacheHit(b *testing.B) {
	db := dataset.Synthetic(dataset.SynthConfig{N: 500, AvgEdges: 10, Labels: 6, Seed: 12})
	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions: 32, Tau: 0.05, MaxPatternEdges: 3, MCSBudget: 500,
		Algorithm: graphdim.DSPMap, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	q := db[7]
	for _, bc := range []struct {
		name  string
		cache graphdim.CacheOptions
	}{
		{"hit", graphdim.CacheOptions{MaxEntries: 1024}},
		{"uncached", graphdim.CacheOptions{}},
	} {
		store := graphdim.NewStore(graphdim.StoreOptions{})
		coll, err := store.CreateFromIndex("bench-"+bc.name, idx, graphdim.CollectionOptions{
			Shards: 2,
			Cache:  bc.cache,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bc.name, func(b *testing.B) {
			// Warm: the first search populates (or, uncached, just runs).
			if _, err := coll.Search(ctx, q, graphdim.SearchOptions{K: 10}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coll.Search(ctx, q, graphdim.SearchOptions{K: 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
		store.Close()
	}
}

// BenchmarkStoreShardedSearch measures one mapped query through the Store
// fan-out at increasing shard counts over the same database — the
// per-query cost of sharding (per-shard VF2 mapping + heap merge) that
// buys parallel Add/persistence/compaction.
func BenchmarkStoreShardedSearch(b *testing.B) {
	db := dataset.Synthetic(dataset.SynthConfig{N: 60, AvgEdges: 12, Labels: 8, Seed: 5})
	idx, err := graphdim.Build(db, graphdim.Options{Dimensions: 30, Tau: 0.1, MCSBudget: 2000})
	if err != nil {
		b.Fatal(err)
	}
	q := db[7]
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4} {
		store := graphdim.NewStore(graphdim.StoreOptions{})
		coll, err := store.CreateFromIndex(fmt.Sprintf("s%d", shards), idx, graphdim.CollectionOptions{Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := coll.Search(ctx, q, graphdim.SearchOptions{K: 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
		store.Close()
	}
}

// BenchmarkStoreAdd measures the online add path through the Store —
// hash placement plus the per-shard VF2 mapping fan-out — with the
// write-ahead log off (a NewStore, PR 3's write path) and on (a durable
// store: each batch is framed, written, and fsynced before it
// publishes). The delta between the two is the full durability tax.
func BenchmarkStoreAdd(b *testing.B) {
	db := dataset.Synthetic(dataset.SynthConfig{N: 60, AvgEdges: 12, Labels: 8, Seed: 5})
	idx, err := graphdim.Build(db, graphdim.Options{Dimensions: 30, Tau: 0.1, MCSBudget: 2000})
	if err != nil {
		b.Fatal(err)
	}
	batch := dataset.Synthetic(dataset.SynthConfig{N: 8, AvgEdges: 12, Labels: 8, Seed: 9})
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		durable bool
	}{{"wal=off", false}, {"wal=on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var store *graphdim.Store
			var err error
			if mode.durable {
				store, err = graphdim.CreateStore(b.TempDir(), graphdim.StoreOptions{})
			} else {
				store = graphdim.NewStore(graphdim.StoreOptions{})
			}
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			coll, err := store.CreateFromIndex("bench", idx, graphdim.CollectionOptions{Shards: 4})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coll.Add(ctx, batch...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngest measures the bulk-ingest write path: one durable-store
// Add per batch means one WAL record and one fsync amortized over the
// whole batch. ns/op is per *graph* (the loop advances by the batch
// size), so batch=1 is the single-add cost the add endpoint pays and
// the batch=256 / batch=1 ratio is the group-commit amortization the
// ingest endpoint buys — the ≥5x acceptance bar of PR 6.
func BenchmarkIngest(b *testing.B) {
	db := dataset.Synthetic(dataset.SynthConfig{N: 60, AvgEdges: 12, Labels: 8, Seed: 5})
	idx, err := graphdim.Build(db, graphdim.Options{Dimensions: 30, Tau: 0.1, MCSBudget: 2000})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, bs := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			store, err := graphdim.CreateStore(b.TempDir(), graphdim.StoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			coll, err := store.CreateFromIndex("bench", idx, graphdim.CollectionOptions{Shards: 4})
			if err != nil {
				b.Fatal(err)
			}
			batch := dataset.Synthetic(dataset.SynthConfig{N: bs, AvgEdges: 12, Labels: 8, Seed: 9})
			b.ResetTimer()
			done := 0
			for ; done < b.N; done += bs {
				if _, err := coll.Add(ctx, batch...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// ns/op is per b.N, which undercounts the final partial batch
			// at small N; ns/graph normalizes by the graphs actually
			// ingested so the batch=256 vs batch=1 ratio (the fsync
			// amortization bulk ingest buys) reads directly off the record
			// at any -benchtime.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(done), "ns/graph")
			b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "graphs/s")
			b.ReportMetric(float64(bs), "graphs/fsync")
		})
	}
}

// BenchmarkSearchAllocs tracks the warm-query allocation profile the
// SoA scan's scratch arenas pin (see TestSearchAllocsBounded for the
// hard ceiling): repeated mapped searches against a 1000-graph index,
// flat and pruned, cache off. Watch allocs/op — it must stay a small
// constant, independent of the database size.
func BenchmarkSearchAllocs(b *testing.B) {
	db := dataset.Synthetic(dataset.SynthConfig{N: 1000, AvgEdges: 10, Labels: 6, Seed: 13})
	idx, err := graphdim.Build(db, graphdim.Options{
		Dimensions: 48, Tau: 0.05, MaxPatternEdges: 3, MCSBudget: 500,
		Algorithm: graphdim.DSPMap, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// A single-vertex query: the mapping's size filter rejects every
	// dimension before VF2 allocates matcher state, so allocs/op
	// reflects the scan, not the matcher.
	q := graphdim.NewGraph(1)
	ctx := context.Background()
	for _, bc := range []struct {
		name    string
		noPrune bool
	}{
		{"flat", true},
		{"pruned", false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opt := graphdim.SearchOptions{K: 10, NoPrune: bc.noPrune}
			if _, err := idx.Search(ctx, q, opt); err != nil { // warm the block + scratch pool
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(ctx, q, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
