// Benchmarks for the v4 segment storage layer (PR 10): cold-open
// latency and resident-heap cost of heap vs mmap serving, and the
// zone-map data-skipping win on selective queries.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/graphdim"
	"repro/internal/dataset"
	"repro/internal/topk"
	"repro/internal/vecspace"
)

var (
	coldOnce sync.Once
	coldDir  string
	coldErr  error
)

// coldStoreDir builds one durable store — 3000 graphs, checkpointed so
// the shard files are v4 segments and the WAL tail is empty — shared by
// every cold-open sub-benchmark.
func coldStoreDir(b *testing.B) string {
	b.Helper()
	coldOnce.Do(func() {
		db := dataset.Synthetic(dataset.SynthConfig{N: 3000, AvgEdges: 10, Labels: 6, Seed: 11})
		idx, err := graphdim.Build(db, graphdim.Options{
			Dimensions:      48,
			Tau:             0.05,
			MaxPatternEdges: 3,
			MCSBudget:       500,
			Algorithm:       graphdim.DSPMap,
			Seed:            1,
		})
		if err != nil {
			coldErr = err
			return
		}
		dir, err := os.MkdirTemp("", "coldopen-*")
		if err != nil {
			coldErr = err
			return
		}
		s, err := graphdim.CreateStore(dir, graphdim.StoreOptions{})
		if err != nil {
			coldErr = err
			return
		}
		if _, err := s.CreateFromIndex("c", idx, graphdim.CollectionOptions{Shards: 2}); err != nil {
			coldErr = err
			return
		}
		if err := s.Checkpoint(); err != nil {
			coldErr = err
			return
		}
		s.Close()
		coldDir = dir
	})
	if coldErr != nil {
		b.Fatal(coldErr)
	}
	return coldDir
}

// BenchmarkColdOpen measures what the memory mode buys at open: time to
// OpenStore a checkpointed collection plus the steady heap it leaves
// behind (heapMB/op — the rehydration cost mmap avoids; file pages the
// mapping touches live in the page cache, not the Go heap). One search
// per open keeps the comparison honest: the mapped store must be
// serving, not just opened.
func BenchmarkColdOpen(b *testing.B) {
	dir := coldStoreDir(b)
	q := dataset.Synthetic(dataset.SynthConfig{N: 1, AvgEdges: 8, Labels: 6, Seed: 3})[0]
	ctx := context.Background()
	for _, bc := range []struct {
		name string
		mode graphdim.MemoryMode
	}{
		{"heap", graphdim.MemoryHeap},
		{"mmap", graphdim.MemoryMap},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var heapGrowth uint64
			var ms runtime.MemStats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				runtime.GC()
				runtime.ReadMemStats(&ms)
				before := ms.HeapAlloc
				b.StartTimer()

				s, err := graphdim.OpenStore(dir, graphdim.StoreOptions{Memory: bc.mode})
				if err != nil {
					b.Fatal(err)
				}
				c, _ := s.Collection("c")
				if _, err := c.Search(ctx, q, graphdim.SearchOptions{K: 10}); err != nil {
					b.Fatal(err)
				}

				b.StopTimer()
				runtime.GC()
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > before {
					heapGrowth += ms.HeapAlloc - before
				}
				s.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(heapGrowth)/float64(b.N)/(1<<20), "heapMB/op")
		})
	}
}

// BenchmarkZoneSkip measures zone-map data skipping on the flat scan at
// its design point: clustered data (each zone's vectors draw from one
// narrow dimension band) and a selective query matching one band. With
// zones the scan proves most blocks cannot beat the current top-k floor
// and never touches their tiles; without (WithoutZones) it streams
// everything. Expect >= 2x.
func BenchmarkZoneSkip(b *testing.B) {
	const (
		p     = 256
		zones = 64
		band  = 16
		n     = zones * vecspace.ZoneSpan
	)
	rng := rand.New(rand.NewSource(17))
	vecs := make([]*vecspace.BitVector, n)
	for i := range vecs {
		v := vecspace.NewBitVector(p)
		base := (i / vecspace.ZoneSpan) * band % p
		for j := 0; j < 8; j++ {
			v.Set(base + rng.Intn(band))
		}
		vecs[i] = v
	}
	q := vecspace.NewBitVector(p)
	for j := 0; j < 8; j++ {
		q.Set(rng.Intn(band))
	}
	blk := vecspace.Pack(vecs, p)
	ctx := context.Background()
	s := topk.NewScratch()
	defer s.Release()
	for _, bc := range []struct {
		name string
		blk  *vecspace.Block
	}{
		{"zones", blk},
		{"nozones", blk.WithoutZones()},
	} {
		b.Run(fmt.Sprintf("%s/n=%d", bc.name, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := topk.MappedTopKContext(ctx, vecs, bc.blk, q, nil, 10, nil, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
