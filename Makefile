# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make bench` additionally records the
# machine-readable perf trajectory the repository tracks across PRs.

GO        ?= go
# BENCHTIME controls measurement cost: 1x smoke-runs every benchmark,
# larger values (e.g. 2s) give stable numbers.
BENCHTIME ?= 1x
# BENCH_OUT is where the JSON benchmark record lands; bump the suffix per
# PR to grow the trajectory instead of overwriting it.
BENCH_OUT ?= BENCH_pr3.json

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages: shard fan-out, compaction swaps, the
# worker budget, and the HTTP layer on top of them.
race:
	$(GO) test -race -count=1 ./graphdim/... ./cmd/gserve/... ./internal/pool/...

vet:
	$(GO) vet ./...

# bench runs every benchmark and writes $(BENCH_OUT): one JSON record per
# op with iterations, ns/op, B/op and allocs/op. Two steps, not a pipe,
# so a panicking benchmark fails the target even after earlier benchmarks
# emitted parseable lines.
bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run '^$$' ./... > $(BENCH_OUT).txt
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) < $(BENCH_OUT).txt
	@rm -f $(BENCH_OUT).txt
