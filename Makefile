# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make bench` additionally records the
# machine-readable perf trajectory the repository tracks across PRs.

GO        ?= go
# BENCHTIME controls measurement cost: 1x smoke-runs every benchmark,
# larger values (e.g. 2s) give stable numbers.
BENCHTIME ?= 1x
# BENCH_OUT is where the JSON benchmark record lands; bump the suffix per
# PR to grow the trajectory instead of overwriting it.
BENCH_OUT ?= BENCH_pr5.json
# COVER_MIN gates `make cover`: the combined statement coverage of the
# public API package, the posting accelerator, and the write-ahead log
# under it.
COVER_MIN ?= 80

.PHONY: build test race vet bench cover

build:
	$(GO) build ./...

# -shuffle=on randomizes test order every run, so inter-test state
# dependencies cannot hide; the seed prints on failure for replay.
test:
	$(GO) test -shuffle=on ./...

# cover enforces the coverage floor on the packages this repository's
# correctness story leans on hardest: the graphdim API (engines, cache,
# store, persistence, durability) plus the posting-list accelerator and
# the write-ahead log.
cover:
	$(GO) test -coverprofile=cover.out ./graphdim ./internal/posting ./internal/wal
	@$(GO) tool cover -func=cover.out | awk '$$1 == "total:" { \
		sub(/%/, "", $$3); \
		if ($$3 + 0 < $(COVER_MIN)) { printf "coverage %.1f%% is below the %d%% floor\n", $$3, $(COVER_MIN); exit 1 } \
		else printf "coverage %.1f%% (floor $(COVER_MIN)%%)\n", $$3 }'

# The concurrency-heavy packages: shard fan-out, compaction swaps, the
# worker budget, the write-ahead log, and the HTTP layer on top of them.
race:
	$(GO) test -race -count=1 ./graphdim/... ./cmd/gserve/... ./internal/pool/... ./internal/wal/...

vet:
	$(GO) vet ./...

# bench runs every benchmark and writes $(BENCH_OUT): one JSON record per
# op with iterations, ns/op, B/op and allocs/op. Two steps, not a pipe,
# so a panicking benchmark fails the target even after earlier benchmarks
# emitted parseable lines.
bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run '^$$' ./... > $(BENCH_OUT).txt
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) < $(BENCH_OUT).txt
	@rm -f $(BENCH_OUT).txt
