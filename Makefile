# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make bench` additionally records the
# machine-readable perf trajectory the repository tracks across PRs.

GO        ?= go
# BENCHTIME controls measurement cost: 1x smoke-runs every benchmark,
# larger values (e.g. 2s) give stable numbers.
BENCHTIME ?= 1x
# BENCH_OUT is where the JSON benchmark record lands; bump the suffix per
# PR to grow the trajectory instead of overwriting it.
BENCH_OUT ?= BENCH_pr10.json
# COVER_MIN gates `make cover`: the combined statement coverage of the
# public API package, the posting accelerator, the pipeline stage DAG,
# the write-ahead log, the replication client, the metrics registry, and
# the HTTP layer (ingest + admission + replication handlers).
COVER_MIN ?= 80
# LOAD_DURATION / LOAD_MAX_P99_MS parameterize `make loadtest` and
# `make loadtest-repl`; LOAD_MAX_LAG bounds how long the follower may
# take to drain the write stream once the repl load run stops.
LOAD_DURATION   ?= 5s
LOAD_MAX_P99_MS ?= 250
LOAD_MAX_LAG    ?= 10s

.PHONY: build test race vet bench cover loadtest loadtest-repl

build:
	$(GO) build ./...

# -shuffle=on randomizes test order every run, so inter-test state
# dependencies cannot hide; the seed prints on failure for replay.
test:
	$(GO) test -shuffle=on ./...

# cover enforces the coverage floor on the packages this repository's
# correctness story leans on hardest: the graphdim API (engines, cache,
# store, persistence, durability), the posting-list accelerator, the
# pipeline stage DAG (parsing, filter compilation, aggregation), the
# write-ahead log, the metrics registry, and the gserve HTTP layer
# (ingest streaming and admission control live there).
cover:
	$(GO) test -coverprofile=cover.out ./graphdim ./internal/posting ./internal/pipeline ./internal/segment ./internal/wal ./internal/repl ./internal/metrics ./cmd/gserve
	@$(GO) tool cover -func=cover.out | awk '$$1 == "total:" { \
		sub(/%/, "", $$3); \
		if ($$3 + 0 < $(COVER_MIN)) { printf "coverage %.1f%% is below the %d%% floor\n", $$3, $(COVER_MIN); exit 1 } \
		else printf "coverage %.1f%% (floor $(COVER_MIN)%%)\n", $$3 }'

# The concurrency-heavy packages: shard fan-out, compaction swaps, the
# worker budget, the write-ahead log, the HTTP layer on top of them, the
# scan kernel (lazy SoA block publication, pooled scratch arenas), and
# the mmap segment layer (shared decoded-graph caches, finalizer unmap).
race:
	$(GO) test -race -count=1 ./graphdim/... ./cmd/gserve/... ./internal/pipeline/... ./internal/pool/... ./internal/wal/... ./internal/repl/... ./internal/topk/... ./internal/vecspace/... ./internal/segment/...

vet:
	$(GO) vet ./...

# bench runs every benchmark and writes $(BENCH_OUT): one JSON record per
# op with iterations, ns/op, B/op and allocs/op. Two steps, not a pipe,
# so a panicking benchmark fails the target even after earlier benchmarks
# emitted parseable lines.
bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run '^$$' ./... > $(BENCH_OUT).txt
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) < $(BENCH_OUT).txt
	@rm -f $(BENCH_OUT).txt

# loadtest runs the open-loop mixed workload (search/add/ingest) against
# an in-process gserve for $(LOAD_DURATION) and fails on any request
# error or an overall p99 above $(LOAD_MAX_P99_MS) milliseconds. Shed
# 429s are admission control working and do not fail the run.
loadtest:
	GLOAD_DURATION=$(LOAD_DURATION) GLOAD_MAX_P99_MS=$(LOAD_MAX_P99_MS) \
		$(GO) test -run '^TestLoadSmoke$$' -count=1 -v ./cmd/gserve

# loadtest-repl runs the same open-loop workload against an in-process
# primary/follower pair: writes land on the primary, a follower_search
# share reads from the replica. Fails on any request error, an overall
# p99 above $(LOAD_MAX_P99_MS), or a follower that cannot drain the
# write stream within $(LOAD_MAX_LAG) of the load stopping.
loadtest-repl:
	GLOAD_DURATION=$(LOAD_DURATION) GLOAD_MAX_P99_MS=$(LOAD_MAX_P99_MS) GLOAD_MAX_LAG=$(LOAD_MAX_LAG) \
		$(GO) test -run '^TestLoadReplSmoke$$' -count=1 -v ./cmd/gserve
