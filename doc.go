// Package repro is a from-scratch Go reproduction of "Leveraging Graph
// Dimensions in Online Graph Search" (Zhu, Yu, Qin; PVLDB 8(1), 2014).
//
// The public API lives in the graphdim subpackage; the paper's algorithms
// and substrates are implemented under internal/ (see DESIGN.md for the
// full inventory). The benchmarks in bench_test.go regenerate every figure
// of the paper's evaluation section; EXPERIMENTS.md records the measured
// shapes against the paper's.
package repro
