// Package repro is a from-scratch Go reproduction of "Leveraging Graph
// Dimensions in Online Graph Search" (Zhu, Yu, Qin; PVLDB 8(1), 2014).
//
// The public API lives in the graphdim subpackage: BuildContext runs the
// parallel offline path (gSpan mining, pairwise MCS matrix, DSPM/DSPMap
// dimension selection) under an Options.Workers bound with cancellation
// and per-stage progress, and the resulting Index serves concurrent
// Search/SearchBatch readers (per-query engine choice: mapped, verified,
// exact), grows online via Add/Remove without re-running DSPM, and
// persists via WriteTo/ReadIndex in a compact versioned binary format.
// Above the single index sits the Store management layer: named
// collections sharded across parallel indexes by hashed graph placement,
// fan-out search with a global top-k merge, background compaction that
// rebuilds stale shards while readers keep serving, and Save/OpenStore
// directory persistence with a manifest. Stores opened against a data
// directory (OpenStore, CreateStore, OpenOrCreateStore) are durable:
// adds and removes are write-ahead logged (internal/wal) and fsynced
// before they publish, Checkpoint persists a snapshot and truncates the
// replayed log, and reopening replays the tail — a kill at any instant
// recovers exactly the acknowledged writes. Concurrent writers share
// fsyncs through the log's group commit: the first appender to arrive
// leads the group, so the durability tax divides across however many
// writes are in flight. cmd/gserve exposes a store over a versioned /v1
// HTTP API (its -data flag is the durable deployment path, with
// periodic, shutdown, and on-demand checkpoints) with graceful
// shutdown, streaming NDJSON bulk ingest (one group-committed fsync per
// batch), per-collection read/write admission lanes that shed overload
// with 429 + Retry-After instead of queueing (internal/pool.Gate), and
// Prometheus-text observability on /metrics (internal/metrics: a
// dependency-free log-linear histogram registry — per-endpoint
// p50/p99/p999, WAL fsync timings, group-commit batch sizes, admission
// rejects, cache hit ratio). Composable query pipelines
// (internal/pipeline) run filter → search → aggregate chains in one
// request: declarative filter stages push down into the posting lists
// (and serialize canonically, so filtered searches stay cacheable where
// opaque Predicate closures cannot), a similarity stage wraps the
// three-engine Search, and streaming aggregates (count, group-by,
// top-k, limit) fold per shard and merge exactly — surfaced as
// POST /v1/collections/{name}/query, Collection.Query in Go, and the
// offline cmd/gq binary. Under every one of those query paths the
// mapped scan runs a structure-of-arrays kernel (internal/vecspace's
// tile-packed Block, built lazily per snapshot and extended
// copy-on-write): one query word streams against 16 graphs per
// popcount iteration, a bounded heap selects the top-k without sorting
// the database, and pooled scratch arenas hold a warm query at O(1)
// allocations — with rankings bit-identical to the scalar reference,
// pinned by a randomized kernel-equivalence suite and an allocation
// regression test (DESIGN.md §14). cmd/gload drives the HTTP surface with an
// open-loop mixed workload (searches, writes, pipelines) and reports
// the latency distribution; the other commands (gen, mine, dspm,
// gsearch, figures, benchjson) cover the rest of the pipeline — see
// README.md for a tour.
//
// The paper's algorithms and substrates are implemented under internal/
// (see DESIGN.md for the full inventory and the concurrency model). The
// benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation section plus the worker-scaling benches; `make bench`
// records them as machine-readable JSON (BENCH_prN.json) to track the
// perf trajectory across PRs; EXPERIMENTS.md records the measured shapes
// against the paper's.
package repro
