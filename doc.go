// Package repro is a from-scratch Go reproduction of "Leveraging Graph
// Dimensions in Online Graph Search" (Zhu, Yu, Qin; PVLDB 8(1), 2014).
//
// The public API lives in the graphdim subpackage: BuildContext runs the
// parallel offline path (gSpan mining, pairwise MCS matrix, DSPM/DSPMap
// dimension selection) under an Options.Workers bound with cancellation
// and per-stage progress, and the resulting Index serves concurrent
// Search/SearchBatch readers (per-query engine choice: mapped, verified,
// exact), grows online via Add/Remove without re-running DSPM, and
// persists via WriteTo/ReadIndex in a compact versioned binary format.
// cmd/gserve exposes a persisted index over HTTP with graceful shutdown;
// the other commands (gen, mine, dspm, gsearch, figures) cover the rest
// of the pipeline — see README.md for a tour.
//
// The paper's algorithms and substrates are implemented under internal/
// (see DESIGN.md for the full inventory and the concurrency model). The
// benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation section plus the worker-scaling benches; EXPERIMENTS.md
// records the measured shapes against the paper's.
package repro
