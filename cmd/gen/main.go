// Command gen generates graph databases in the standard text format:
// chemical-compound-like molecules (the PubChem surrogate) or
// GraphGen-like synthetic graphs.
//
// Usage:
//
//	gen -kind chem -n 1000 -seed 1 > db.graphs
//	gen -kind synth -n 1000 -edges 20 -labels 20 -density 0.2 > db.graphs
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gen: ")
	var (
		kind    = flag.String("kind", "chem", "dataset kind: chem or synth")
		n       = flag.Int("n", 100, "number of graphs")
		seed    = flag.Int64("seed", 1, "random seed")
		minV    = flag.Int("min-vertices", 10, "chem: minimum vertices")
		maxV    = flag.Int("max-vertices", 20, "chem: maximum vertices")
		scaff   = flag.Int("scaffolds", 8, "chem: scaffold family count")
		edges   = flag.Int("edges", 20, "synth: average edge count")
		labels  = flag.Int("labels", 20, "synth: distinct vertex labels")
		density = flag.Float64("density", 0.2, "synth: average density")
	)
	flag.Parse()

	var db []*graph.Graph
	switch *kind {
	case "chem":
		db = dataset.Chemical(dataset.ChemConfig{
			N: *n, MinVertices: *minV, MaxVertices: *maxV, Scaffolds: *scaff, Seed: *seed,
		})
	case "synth":
		db = dataset.Synthetic(dataset.SynthConfig{
			N: *n, AvgEdges: *edges, Labels: *labels, Density: *density, Seed: *seed,
		})
	default:
		log.Fatalf("unknown -kind %q (want chem or synth)", *kind)
	}
	if err := graph.WriteAll(os.Stdout, db); err != nil {
		log.Fatal(err)
	}
}
