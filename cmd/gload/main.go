// Command gload is the load harness for gserve: it drives an open-loop
// mixed workload (search/add/ingest/pipeline) at a fixed arrival rate
// against a running server and prints the latency distribution as JSON —
// p50, p99, p999 per operation and overall, with 429-shed requests
// counted separately from errors. The fifth mix component sends
// composable pipeline documents to /query (filtered grouped searches
// and filtered counts).
//
// Open-loop means arrival times are fixed in advance at -rate: a
// stalling server piles queue delay into the reported percentiles
// instead of slowing the generator (closed-loop harnesses under-report
// tail latency exactly when it matters).
//
// Usage:
//
//	gserve -data /tmp/g -index index.gdx -addr :8080 &
//	gload -addr http://127.0.0.1:8080 -collection default \
//	  -duration 30s -rate 200 -mix 80,15,5 | jq .
//
// With a replication follower running, a fourth mix component routes
// that share of searches to the follower:
//
//	gserve -data /tmp/f -follow http://127.0.0.1:8080 -addr :8081 &
//	gload -addr http://127.0.0.1:8080 -follower http://127.0.0.1:8081 \
//	  -collection default -mix 40,15,5,40 | jq .
//
// Exit status is non-zero when any request errored (shed 429s do not
// count) or when -max-p99 is set and overall p99 exceeded it — so CI
// can gate on a latency guardrail.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func parseMix(s string) (loadgen.Mix, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 3 || len(parts) > 5 {
		return loadgen.Mix{}, fmt.Errorf("mix must be three to five comma-separated percentages (search,add,ingest[,follower_search[,pipeline]]), got %q", s)
	}
	var pct [5]int
	total := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return loadgen.Mix{}, fmt.Errorf("mix component %q must be a non-negative integer", p)
		}
		pct[i] = n
		total += n
	}
	if total == 0 {
		return loadgen.Mix{}, fmt.Errorf("mix %q sums to zero", s)
	}
	return loadgen.Mix{SearchPct: pct[0], AddPct: pct[1], IngestPct: pct[2], FollowerSearchPct: pct[3], PipelinePct: pct[4]}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gload: ")
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "gserve base URL")
		coll     = flag.String("collection", "default", "target collection")
		duration = flag.Duration("duration", 10*time.Second, "nominal run length (ops = duration * rate)")
		rate     = flag.Float64("rate", 100, "open-loop arrival rate, operations/second")
		mixFlag  = flag.String("mix", "75,15,5,0,5", "workload mix as search,add,ingest[,follower_search[,pipeline]] percentages")
		follower = flag.String("follower", "", "follower gserve base URL for the follower_search mix component (falls back to -addr when empty)")
		conc     = flag.Int("concurrency", 32, "max outstanding requests")
		k        = flag.Int("k", 5, "results per search")
		batch    = flag.Int("ingest-batch", 64, "graphs per ingest request")
		seed     = flag.Int64("seed", 1, "workload seed (same seed = same op sequence and payloads)")
		maxP99   = flag.Float64("max-p99", 0, "fail (exit 1) if overall p99 exceeds this many milliseconds (0 = no guardrail)")
	)
	flag.Parse()

	ops := int(duration.Seconds() * *rate)
	if ops <= 0 {
		log.Fatalf("duration %v at rate %v yields no operations", *duration, *rate)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     *addr,
		Collection:  *coll,
		Rate:        *rate,
		Ops:         ops,
		Concurrency: *conc,
		Mix:         mix,
		K:           *k,
		IngestBatch: *batch,
		FollowerURL: *follower,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if rep.Errors > 0 {
		log.Fatalf("%d of %d requests errored (first: %s)", rep.Errors, rep.Ops, rep.SampleError)
	}
	if *maxP99 > 0 && rep.P99Ms > *maxP99 {
		log.Fatalf("overall p99 %.1fms exceeds the -max-p99 guardrail %.1fms", rep.P99Ms, *maxP99)
	}
}
