// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document — the format the repository's perf
// trajectory is recorded in (BENCH_prN.json at the repo root, written by
// `make bench`). Each benchmark line becomes one record with the op name,
// iteration count, ns/op, and — when -benchmem is on — B/op and
// allocs/op; context lines (goos, goarch, cpu, pkg) become header fields.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_pr3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type record struct {
	Package string  `json:"package,omitempty"`
	Op      string  `json:"op"`
	Iters   int64   `json:"iterations"`
	NsPerOp float64 `json:"ns_per_op"`
	BPerOp  float64 `json:"bytes_per_op,omitempty"`
	Allocs  float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "precision").
	Extra map[string]float64 `json:"extra,omitempty"`
}

type document struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos,omitempty"`
	GOARCH      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	Benchmarks  []record `json:"benchmarks"`
}

// benchLine matches "BenchmarkFoo/sub-8   100   123456 ns/op[ ...]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// metricPair matches the trailing "<value> <unit>" pairs after ns/op.
var metricPair = regexp.MustCompile(`([0-9.]+)\s+(\S+)`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc := document{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		rec := record{Package: pkg, Op: m[1], Iters: iters, NsPerOp: ns}
		for _, pair := range metricPair.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			switch pair[2] {
			case "B/op":
				rec.BPerOp = v
			case "allocs/op":
				rec.Allocs = v
			default:
				if rec.Extra == nil {
					rec.Extra = map[string]float64{}
				}
				rec.Extra[pair[2]] = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin (pipe `go test -bench` output in)")
	}

	data, err := json.MarshalIndent(&doc, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}
