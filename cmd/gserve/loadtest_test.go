package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/graphdim"
	"repro/internal/dataset"
	"repro/internal/loadgen"
)

// TestLoadSmoke drives the open-loop generator against an in-process
// gserve with the default mixed workload. It is the `make loadtest`
// entry point: GLOAD_DURATION stretches the run (CI uses 5s), and
// GLOAD_MAX_P99_MS optionally turns the p99 into a hard guardrail. The
// invariant checked unconditionally is error-rate zero — shed 429s are
// fine, failed requests are not.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke is not a -short test")
	}
	dur := 1500 * time.Millisecond
	if v := os.Getenv("GLOAD_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("GLOAD_DURATION %q: %v", v, err)
		}
		dur = d
	}
	const rate = 150.0
	ts, _ := newTestServer(t, 4, 30*time.Second)

	rep, err := loadgen.Run(t.Context(), loadgen.Config{
		BaseURL:     ts.URL,
		Collection:  "default",
		Rate:        rate,
		Ops:         int(dur.Seconds() * rate),
		Concurrency: 16,
		Mix:         loadgen.DefaultMix,
		K:           5,
		IngestBatch: 32,
		Seed:        7,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatalf("loadgen.Run: %v", err)
	}
	t.Logf("ops=%d errors=%d rejected=%d p50=%.2fms p99=%.2fms p999=%.2fms achieved=%.1f/s",
		rep.Ops, rep.Errors, rep.Rejected, rep.P50Ms, rep.P99Ms, rep.P999Ms, rep.AchievedRate)
	for kind, op := range rep.PerOp {
		t.Logf("  %-7s count=%d errors=%d rejected=%d p50=%.2fms p99=%.2fms", kind, op.Count, op.Errors, op.Rejected, op.P50Ms, op.P99Ms)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d of %d requests errored under mixed load (first: %s)", rep.Errors, rep.Ops, rep.SampleError)
	}
	if rep.Ops == 0 {
		t.Fatal("load run completed zero operations")
	}
	if v := os.Getenv("GLOAD_MAX_P99_MS"); v != "" {
		max, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("GLOAD_MAX_P99_MS %q: %v", v, err)
		}
		if rep.P99Ms > max {
			t.Fatalf("overall p99 %.2fms exceeds GLOAD_MAX_P99_MS=%.2f", rep.P99Ms, max)
		}
	}
}

// BenchmarkServedMixedLoad reports end-to-end served latency under the
// default open-loop mix: b.N operations at a fixed arrival rate against
// an in-process server. The interesting output is the reported
// p50/p99/p999 (milliseconds, scheduled-arrival based so queue delay
// counts), not ns/op.
func BenchmarkServedMixedLoad(b *testing.B) {
	db := dataset.Chemical(dataset.ChemConfig{N: 25, MinVertices: 8, MaxVertices: 12, Seed: 7})
	idx, err := graphdim.Build(db, graphdim.Options{Dimensions: 12, Tau: 0.2, MCSBudget: 1500})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	idx, err = graphdim.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	store := graphdim.NewStore(graphdim.StoreOptions{})
	defer store.Close()
	if _, err := store.CreateFromIndex("default", idx, graphdim.CollectionOptions{
		Shards: 4,
		Build:  graphdim.Options{Dimensions: 12, Tau: 0.2, MCSBudget: 1500},
		Cache:  graphdim.CacheOptions{MaxEntries: 256},
	}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, "default", 10, 30*time.Second))
	defer ts.Close()

	// Percentiles from a handful of samples are noise: drive at least 400
	// operations (one second at the target rate) even when -benchtime asks
	// for a single iteration, as the smoke pipeline does. ns/op then reads
	// as "time per declared iteration" — the reported quantiles are the
	// point of this benchmark.
	ops := b.N
	if ops < 400 {
		ops = 400
	}
	b.ResetTimer()
	rep, err := loadgen.Run(b.Context(), loadgen.Config{
		BaseURL:     ts.URL,
		Collection:  "default",
		Rate:        400,
		Ops:         ops,
		Concurrency: 32,
		Mix:         loadgen.DefaultMix,
		K:           5,
		IngestBatch: 32,
		Seed:        11,
		Client:      ts.Client(),
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors > 0 {
		b.Fatalf("%d errors under load (first: %s)", rep.Errors, rep.SampleError)
	}
	b.ReportMetric(rep.P50Ms, "p50_ms")
	b.ReportMetric(rep.P99Ms, "p99_ms")
	b.ReportMetric(rep.P999Ms, "p999_ms")
	b.ReportMetric(rep.AchievedRate, "ops/s_achieved")
}
