package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/graphdim"
	"repro/internal/dataset"
	"repro/internal/loadgen"
)

// TestLoadSmoke drives the open-loop generator against an in-process
// gserve with the default mixed workload. It is the `make loadtest`
// entry point: GLOAD_DURATION stretches the run (CI uses 5s), and
// GLOAD_MAX_P99_MS optionally turns the p99 into a hard guardrail. The
// invariant checked unconditionally is error-rate zero — shed 429s are
// fine, failed requests are not.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke is not a -short test")
	}
	dur := 1500 * time.Millisecond
	if v := os.Getenv("GLOAD_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("GLOAD_DURATION %q: %v", v, err)
		}
		dur = d
	}
	const rate = 150.0
	ts, _ := newTestServer(t, 4, 30*time.Second)

	rep, err := loadgen.Run(t.Context(), loadgen.Config{
		BaseURL:     ts.URL,
		Collection:  "default",
		Rate:        rate,
		Ops:         int(dur.Seconds() * rate),
		Concurrency: 16,
		Mix:         loadgen.DefaultMix,
		K:           5,
		IngestBatch: 32,
		Seed:        7,
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatalf("loadgen.Run: %v", err)
	}
	t.Logf("ops=%d errors=%d rejected=%d p50=%.2fms p99=%.2fms p999=%.2fms achieved=%.1f/s",
		rep.Ops, rep.Errors, rep.Rejected, rep.P50Ms, rep.P99Ms, rep.P999Ms, rep.AchievedRate)
	for kind, op := range rep.PerOp {
		t.Logf("  %-7s count=%d errors=%d rejected=%d p50=%.2fms p99=%.2fms", kind, op.Count, op.Errors, op.Rejected, op.P50Ms, op.P99Ms)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d of %d requests errored under mixed load (first: %s)", rep.Errors, rep.Ops, rep.SampleError)
	}
	if rep.Ops == 0 {
		t.Fatal("load run completed zero operations")
	}
	if v := os.Getenv("GLOAD_MAX_P99_MS"); v != "" {
		max, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("GLOAD_MAX_P99_MS %q: %v", v, err)
		}
		if rep.P99Ms > max {
			t.Fatalf("overall p99 %.2fms exceeds GLOAD_MAX_P99_MS=%.2f", rep.P99Ms, max)
		}
	}
}

// TestLoadReplSmoke drives the mixed workload against a two-node
// primary/follower pair — writes and a search share on the primary,
// the follower_search share on the replica — and gates on zero errors
// plus a replication-lag guardrail: the follower must drain the write
// stream within GLOAD_MAX_LAG (default 10s) of the load stopping. It is
// the `make loadtest-repl` entry point; GLOAD_DURATION stretches the
// run and GLOAD_MAX_P99_MS adds the latency guardrail, as in
// TestLoadSmoke.
func TestLoadReplSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("repl load smoke is not a -short test")
	}
	dur := 1500 * time.Millisecond
	if v := os.Getenv("GLOAD_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("GLOAD_DURATION %q: %v", v, err)
		}
		dur = d
	}
	maxLag := 10 * time.Second
	if v := os.Getenv("GLOAD_MAX_LAG"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("GLOAD_MAX_LAG %q: %v", v, err)
		}
		maxLag = d
	}
	const rate = 150.0

	pts, _, pstore := newPrimaryServer(t, t.TempDir())
	defer pts.Close()
	defer pstore.Close()
	pc, _ := pstore.Collection("default")
	fp := startFollowerProc(t, pts.URL, t.TempDir())
	defer fp.kill()

	rep, err := loadgen.Run(t.Context(), loadgen.Config{
		BaseURL:     pts.URL,
		FollowerURL: fp.ts.URL,
		Collection:  "default",
		Rate:        rate,
		Ops:         int(dur.Seconds() * rate),
		Concurrency: 16,
		Mix:         loadgen.Mix{SearchPct: 40, AddPct: 15, IngestPct: 5, FollowerSearchPct: 40},
		K:           5,
		IngestBatch: 32,
		Seed:        7,
		Client:      pts.Client(),
	})
	if err != nil {
		t.Fatalf("loadgen.Run: %v", err)
	}
	t.Logf("ops=%d errors=%d rejected=%d p50=%.2fms p99=%.2fms p999=%.2fms achieved=%.1f/s",
		rep.Ops, rep.Errors, rep.Rejected, rep.P50Ms, rep.P99Ms, rep.P999Ms, rep.AchievedRate)
	for kind, op := range rep.PerOp {
		t.Logf("  %-15s count=%d errors=%d rejected=%d p50=%.2fms p99=%.2fms", kind, op.Count, op.Errors, op.Rejected, op.P50Ms, op.P99Ms)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d of %d requests errored under replicated load (first: %s)", rep.Errors, rep.Ops, rep.SampleError)
	}
	if op := rep.PerOp["follower_search"]; op == nil || op.Count == 0 {
		t.Fatal("the follower served zero searches; the follower_search mix did not run")
	}

	// The lag guardrail: all load has stopped, so the follower must drain
	// the remaining WAL tail promptly or replication is falling behind in
	// a way heartbeats are hiding.
	fc, ok := fp.store.Collection("default")
	if !ok {
		t.Fatal("follower store has no default collection")
	}
	drainStart := time.Now()
	target := pc.AppliedSeq()
	waitUntil(t, maxLag, "follower to drain the write stream", func() bool {
		return fc.AppliedSeq() >= target
	})
	t.Logf("follower drained to seq %d in %v (lag guardrail %v)", fc.AppliedSeq(), time.Since(drainStart).Round(time.Millisecond), maxLag)

	if v := os.Getenv("GLOAD_MAX_P99_MS"); v != "" {
		max, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("GLOAD_MAX_P99_MS %q: %v", v, err)
		}
		if rep.P99Ms > max {
			t.Fatalf("overall p99 %.2fms exceeds GLOAD_MAX_P99_MS=%.2f", rep.P99Ms, max)
		}
	}
}

// renderAddBodies pre-renders n distinct single-graph add payloads.
func renderAddBodies(b *testing.B, n int, seed int64) []string {
	b.Helper()
	db := dataset.Chemical(dataset.ChemConfig{N: n, MinVertices: 8, MaxVertices: 12, Seed: seed})
	bodies := make([]string, 0, n)
	for _, g := range db {
		var buf bytes.Buffer
		if err := graphdim.WriteGraphs(&buf, []*graphdim.Graph{g}); err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, buf.String())
	}
	return bodies
}

func postAdd(b *testing.B, client *http.Client, baseURL, body string) {
	b.Helper()
	resp, err := client.Post(baseURL+"/v1/collections/default/add", "text/plain", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("add: status %d", resp.StatusCode)
	}
}

// BenchmarkReplicationShip measures steady-state WAL shipping: each
// iteration is one durable HTTP add on the primary while a live
// follower tails the stream, and the timer stops only after the
// follower has applied every shipped record — so records/s_shipped is
// end-to-end replication throughput, not just primary write throughput.
func BenchmarkReplicationShip(b *testing.B) {
	pts, _, pstore := newPrimaryServer(b, b.TempDir())
	defer pts.Close()
	defer pstore.Close()
	pc, _ := pstore.Collection("default")
	fp := startFollowerProc(b, pts.URL, b.TempDir())
	defer fp.kill()
	fc, ok := fp.store.Collection("default")
	if !ok {
		b.Fatal("follower store has no default collection")
	}
	waitUntil(b, 10*time.Second, "initial catch-up", func() bool {
		return fc.AppliedSeq() >= pc.AppliedSeq()
	})
	bodies := renderAddBodies(b, 64, 51)
	client := pts.Client()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postAdd(b, client, pts.URL, bodies[i%len(bodies)])
	}
	target := pc.AppliedSeq()
	waitUntil(b, 60*time.Second, "follower to drain the shipped records", func() bool {
		return fc.AppliedSeq() >= target
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s_shipped")
}

// BenchmarkReplicationCatchUp measures cold catch-up: each iteration
// builds a 32-record backlog on the primary while the follower is down,
// then restarts the follower over the same directory and times
// resume-tail-and-replay until it converges. records/s_catchup is the
// backlog drain rate including follower startup.
func BenchmarkReplicationCatchUp(b *testing.B) {
	pts, _, pstore := newPrimaryServer(b, b.TempDir())
	defer pts.Close()
	defer pstore.Close()
	pc, _ := pstore.Collection("default")
	fdir := b.TempDir()
	// Bootstrap once; every timed restart resumes from the local offset.
	fp := startFollowerProc(b, pts.URL, fdir)
	fc, _ := fp.store.Collection("default")
	waitUntil(b, 10*time.Second, "initial catch-up", func() bool {
		return fc.AppliedSeq() >= pc.AppliedSeq()
	})
	fp.kill()
	const backlog = 32
	bodies := renderAddBodies(b, backlog, 53)
	client := pts.Client()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, body := range bodies {
			postAdd(b, client, pts.URL, body)
		}
		target := pc.AppliedSeq()
		b.StartTimer()
		fp := startFollowerProc(b, pts.URL, fdir)
		fc, _ := fp.store.Collection("default")
		waitUntil(b, 30*time.Second, "backlog catch-up", func() bool {
			return fc.AppliedSeq() >= target
		})
		b.StopTimer()
		fp.kill()
		b.StartTimer()
	}
	b.ReportMetric(float64(backlog)*float64(b.N)/b.Elapsed().Seconds(), "records/s_catchup")
}

// BenchmarkServedMixedLoad reports end-to-end served latency under the
// default open-loop mix: b.N operations at a fixed arrival rate against
// an in-process server. The interesting output is the reported
// p50/p99/p999 (milliseconds, scheduled-arrival based so queue delay
// counts), not ns/op.
func BenchmarkServedMixedLoad(b *testing.B) {
	db := dataset.Chemical(dataset.ChemConfig{N: 25, MinVertices: 8, MaxVertices: 12, Seed: 7})
	idx, err := graphdim.Build(db, graphdim.Options{Dimensions: 12, Tau: 0.2, MCSBudget: 1500})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	idx, err = graphdim.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	store := graphdim.NewStore(graphdim.StoreOptions{})
	defer store.Close()
	if _, err := store.CreateFromIndex("default", idx, graphdim.CollectionOptions{
		Shards: 4,
		Build:  graphdim.Options{Dimensions: 12, Tau: 0.2, MCSBudget: 1500},
		Cache:  graphdim.CacheOptions{MaxEntries: 256},
	}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, "default", 10, 30*time.Second))
	defer ts.Close()

	// Percentiles from a handful of samples are noise: drive at least 400
	// operations (one second at the target rate) even when -benchtime asks
	// for a single iteration, as the smoke pipeline does. ns/op then reads
	// as "time per declared iteration" — the reported quantiles are the
	// point of this benchmark.
	ops := b.N
	if ops < 400 {
		ops = 400
	}
	b.ResetTimer()
	rep, err := loadgen.Run(b.Context(), loadgen.Config{
		BaseURL:     ts.URL,
		Collection:  "default",
		Rate:        400,
		Ops:         ops,
		Concurrency: 32,
		Mix:         loadgen.DefaultMix,
		K:           5,
		IngestBatch: 32,
		Seed:        11,
		Client:      ts.Client(),
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors > 0 {
		b.Fatalf("%d errors under load (first: %s)", rep.Errors, rep.SampleError)
	}
	b.ReportMetric(rep.P50Ms, "p50_ms")
	b.ReportMetric(rep.P99Ms, "p99_ms")
	b.ReportMetric(rep.P999Ms, "p999_ms")
	b.ReportMetric(rep.AchievedRate, "ops/s_achieved")
}
