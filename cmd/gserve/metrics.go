package main

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/pipeline"
)

// serverMetrics is the observability state behind /metrics: per-endpoint
// latency histograms, request/reject counters, and the WAL fsync
// telemetry fed by the store's SyncObserver. It is created before the
// store (the observer hook must exist at open time) and handed to
// newServerCfg.
type serverMetrics struct {
	reg *metrics.Registry

	// fsync latency and group-commit batch size arrive from the WAL's
	// SyncObserver — one observation per fsync, across all collections.
	fsync      *metrics.Histogram
	groupBatch *metrics.Histogram

	mu      sync.Mutex
	latency map[string]*metrics.Histogram // endpoint → request latency, ns
	stages  map[string]*metrics.Histogram // pipeline stage → latency, ns
}

func newServerMetrics() *serverMetrics {
	m := &serverMetrics{
		reg:        metrics.NewRegistry(),
		fsync:      &metrics.Histogram{},
		groupBatch: &metrics.Histogram{},
		latency:    make(map[string]*metrics.Histogram),
		stages:     make(map[string]*metrics.Histogram),
	}
	m.reg.Summary("gserve_wal_fsync_duration_seconds", "",
		"time spent inside WAL fsync per group commit", m.fsync, 1e-9)
	m.reg.Summary("gserve_wal_group_commit_records", "",
		"records committed per WAL fsync (group-commit batch size)", m.groupBatch, 1)
	return m
}

// walObserver is the hook wired into WALOptions.SyncObserver. It runs
// with the log locked, so it only touches wait-free histograms.
func (m *serverMetrics) walObserver() func(d time.Duration, records int) {
	return func(d time.Duration, records int) {
		m.fsync.Observe(int64(d))
		m.groupBatch.Observe(int64(records))
	}
}

// endpointHistogram returns (registering on first use) the latency
// histogram for one endpoint label.
func (m *serverMetrics) endpointHistogram(endpoint string) *metrics.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latency[endpoint]
	if !ok {
		h = &metrics.Histogram{}
		m.latency[endpoint] = h
		m.reg.Summary("gserve_http_request_duration_seconds",
			fmt.Sprintf("endpoint=%q", endpoint),
			"request latency by endpoint", h, 1e-9)
	}
	return h
}

// observeRequest records one finished request into the per-endpoint
// latency summary and the endpoint/code request counter.
func (m *serverMetrics) observeRequest(endpoint string, code int, d time.Duration) {
	m.endpointHistogram(endpoint).Observe(int64(d))
	m.reg.Counter("gserve_http_requests_total",
		fmt.Sprintf("code=\"%d\",endpoint=%q", code, endpoint),
		"requests served by endpoint and status code").Inc()
}

// stageHistogram returns (registering on first use) the latency summary
// for one pipeline stage. Like endpointHistogram, lazy registration
// keeps the series absent until a pipeline query actually runs, so the
// golden scrape shape of an idle server is unchanged.
func (m *serverMetrics) stageHistogram(stage string) *metrics.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.stages[stage]
	if !ok {
		h = &metrics.Histogram{}
		m.stages[stage] = h
		m.reg.Summary("gserve_pipeline_stage_duration_seconds",
			fmt.Sprintf("stage=%q", stage),
			"pipeline stage latency by stage", h, 1e-9)
	}
	return h
}

// observePipeline records one finished pipeline query: per-stage
// latencies and the pushdown/fallback split of its filter predicates.
// The counters register on first use for the same golden-scrape reason.
func (m *serverMetrics) observePipeline(st pipeline.Stats) {
	for _, t := range st.Stages {
		m.stageHistogram(t.Stage).Observe(int64(t.ElapsedMS * 1e6))
	}
	if st.PushedPredicates > 0 {
		m.reg.Counter("gserve_pipeline_pushdown_total", `outcome="pushdown"`,
			"filter predicates answered by posting pushdown vs per-graph fallback").
			Add(int64(st.PushedPredicates))
	}
	if st.FallbackPredicates > 0 {
		m.reg.Counter("gserve_pipeline_pushdown_total", `outcome="fallback"`,
			"filter predicates answered by posting pushdown vs per-graph fallback").
			Add(int64(st.FallbackPredicates))
	}
}

// rejectCounter returns the admission-reject counter for one lane.
func (m *serverMetrics) rejectCounter(collection, lane string) *metrics.Counter {
	return m.reg.Counter("gserve_admission_rejected_total",
		fmt.Sprintf("collection=%q,lane=%q", collection, lane),
		"requests shed with 429 because the lane was full")
}

// registerStoreGauges adds the gauges that read live store state at
// scrape time: aggregate cache hit ratio and the largest group-commit
// batch any collection's WAL has seen.
func (s *server) registerStoreGauges() {
	s.metrics.reg.Gauge("gserve_cache_hit_ratio", "",
		"query-cache hits / lookups across all collections (0 when idle)",
		func() float64 {
			var hits, total int64
			for _, name := range s.store.Collections() {
				c, ok := s.store.Collection(name)
				if !ok {
					continue
				}
				if st := c.Stats(); st.Cache != nil {
					hits += st.Cache.Hits
					total += st.Cache.Hits + st.Cache.Misses
				}
			}
			if total == 0 {
				return 0
			}
			return float64(hits) / float64(total)
		})
	s.metrics.reg.Gauge("gserve_wal_max_batch_records", "",
		"largest record group one WAL fsync has committed",
		func() float64 {
			max := 0
			for _, name := range s.store.Collections() {
				c, ok := s.store.Collection(name)
				if !ok {
					continue
				}
				if st := c.Stats(); st.WAL != nil && st.WAL.MaxBatch > max {
					max = st.WAL.MaxBatch
				}
			}
			return float64(max)
		})
}

// statusRecorder captures the response status for the request metrics.
// Unwrap keeps http.NewResponseController working through it (the
// ingest handler flushes and the offline builds lift deadlines).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// endpointLabel maps a request to the bounded endpoint vocabulary the
// metrics use — collection names (or arbitrary paths) in a label would
// explode the series space. Parsed from the raw path: the label is
// computed outside the mux, before path values exist.
func endpointLabel(r *http.Request) string {
	if strings.HasPrefix(r.URL.Path, "/v1/replication") {
		return "replication"
	}
	if rest, ok := strings.CutPrefix(r.URL.Path, "/v1/collections"); ok {
		switch parts := strings.Split(strings.Trim(rest, "/"), "/"); len(parts) {
		case 1:
			if parts[0] == "" {
				return "collections"
			}
			return "collection"
		case 2:
			switch parts[1] {
			case "search", "add", "ingest", "query", "stats", "compact", "checkpoint":
				return parts[1]
			}
		}
		return "other"
	}
	switch r.URL.Path {
	case "/search":
		return "search"
	case "/add":
		return "add"
	case "/topk":
		return "topk"
	case "/healthz":
		return "healthz"
	case "/stats":
		return "stats"
	case "/metrics":
		return "metrics"
	}
	return "other"
}

// handleMetrics serves the Prometheus scrape.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET scrapes metrics")
		return
	}
	s.metrics.reg.ServeHTTP(w, r)
}
