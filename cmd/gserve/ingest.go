package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/graphdim"
)

// Bulk ingest: POST /v1/collections/{name}/ingest streams graphs in as
// NDJSON — one graph per line — and acknowledges them per batch. Each
// batch becomes ONE Collection.Add call, hence one WAL record and one
// group-committed fsync, so the ~fsync cost is amortized across the
// whole batch instead of paid per graph (the add endpoint's price).
// Response lines stream back as each batch commits, so a client knows
// exactly which prefix is durable at any moment; a crash mid-stream
// loses only the unacknowledged tail, and a partially applied batch is
// settled with a compensating WAL record by the store (see
// graphdim.PartialAddError) so recovery replays exactly the committed
// subset.

// maxIngestBytes caps one ingest request body. Bulk loads are the point
// of the endpoint, so the cap is well above maxBodyBytes; larger loads
// split across requests.
const maxIngestBytes = 1 << 30

const (
	defaultIngestBatch = 256
	maxIngestBatch     = 4096
)

// ingestGraph is one NDJSON input line: vertex labels by index, edges
// as [u, v, label] triples.
type ingestGraph struct {
	Labels []int    `json:"labels"`
	Edges  [][3]int `json:"edges"`
}

func (ig *ingestGraph) build() (*graphdim.Graph, error) {
	if len(ig.Labels) == 0 {
		return nil, fmt.Errorf("graph has no vertices")
	}
	g := graphdim.NewGraph(len(ig.Labels))
	for _, l := range ig.Labels {
		if l < 0 {
			return nil, fmt.Errorf("negative vertex label %d", l)
		}
		g.AddVertex(graphdim.Label(l))
	}
	for _, e := range ig.Edges {
		if e[2] < 0 {
			return nil, fmt.Errorf("negative edge label %d", e[2])
		}
		if err := g.AddEdge(e[0], e[1], graphdim.Label(e[2])); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ingestAck is one response line: the ack for one committed batch, or —
// with Error set — the in-band failure that ends the stream.
type ingestAck struct {
	Batch   int    `json:"batch"`
	Applied int    `json:"applied"`
	Total   int    `json:"total,omitempty"` // set when applied < attempted
	FirstID int    `json:"first_id"`
	LastID  int    `json:"last_id"`
	Error   string `json:"error,omitempty"`
}

// ingestSummary is the final response line.
type ingestSummary struct {
	Done       bool   `json:"done"`
	Collection string `json:"collection"`
	Batches    int    `json:"batches"`
	Applied    int    `json:"applied"`
	Size       int    `json:"size"`
	Error      string `json:"error,omitempty"`
}

func parseIngestBatch(r *http.Request) (int, error) {
	v := r.URL.Query().Get("batch")
	if v == "" {
		return defaultIngestBatch, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("batch must be a positive integer, got %q", v)
	}
	if n > maxIngestBatch {
		n = maxIngestBatch
	}
	return n, nil
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request, c *graphdim.Collection) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST NDJSON graphs: one {\"labels\":[...],\"edges\":[[u,v,label],...]} per line")
		return
	}
	if s.redirectToPrimary(w, r) {
		return
	}
	batchSize, err := parseIngestBatch(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	gate := s.lanes(c.Name()).write
	if !s.admit(w, c.Name(), "write", gate) {
		return
	}
	defer gate.Leave()

	// The stream can legitimately outlast -timeout (it is bounded per
	// batch below, not per request), so lift the connection deadlines the
	// way the other long-running endpoints do.
	clearConnDeadlines(w)
	rc := http.NewResponseController(w)
	// Acks stream back while the request body is still being read —
	// without full duplex, net/http closes the unread body at the first
	// response write and the stream dies after one batch.
	if err := rc.EnableFullDuplex(); err != nil {
		s.fail(w, http.StatusInternalServerError, "streaming unsupported on this connection: %v", err)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBytes))

	var (
		started bool // first response byte written — status is committed
		batches int
		applied int
	)
	// fail before any output is a clean 400/503; after, the error goes
	// in-band so the client still learns which batches are durable.
	abort := func(status int, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		if !started {
			s.fail(w, status, "%s", msg)
			return
		}
		s.errors.Add(1)
		writeNDJSON(w, ingestSummary{Collection: c.Name(), Batches: batches, Applied: applied, Size: c.Size(), Error: msg})
	}

	for {
		// Decode up to batchSize lines. Build errors and malformed JSON
		// end the stream at a line boundary: everything acked before it
		// stays committed, nothing after it is attempted.
		batch := make([]*graphdim.Graph, 0, batchSize)
		for len(batch) < batchSize {
			var line ingestGraph
			if err := dec.Decode(&line); err == io.EOF {
				break
			} else if err != nil {
				abort(http.StatusBadRequest, "line %d: parsing NDJSON graph: %v", applied+len(batch)+1, err)
				return
			}
			g, err := line.build()
			if err != nil {
				abort(http.StatusBadRequest, "line %d: %v", applied+len(batch)+1, err)
				return
			}
			batch = append(batch, g)
		}
		if len(batch) == 0 {
			break
		}

		// One Add per batch = one WAL record, one (group-committed)
		// fsync; -timeout bounds each batch rather than the stream.
		ctx, cancel := s.requestContext(r)
		ids, err := c.Add(ctx, batch...)
		cancel()
		batches++
		if err != nil {
			var pe *graphdim.PartialAddError
			if errors.As(err, &pe) {
				// The store already settled the batch with a compensating
				// WAL record: exactly pe.Applied is durable. Report it and
				// stop — the client owns the retry decision.
				applied += len(pe.Applied)
				s.added.Add(int64(len(pe.Applied)))
				ack := ingestAck{Batch: batches, Applied: len(pe.Applied), Total: pe.Total, Error: pe.Err.Error()}
				if n := len(pe.Applied); n > 0 {
					ack.FirstID, ack.LastID = pe.Applied[0], pe.Applied[n-1]
				}
				started = true
				writeNDJSON(w, ack)
				writeNDJSON(w, ingestSummary{Collection: c.Name(), Batches: batches, Applied: applied, Size: c.Size(), Error: "partial batch"})
				s.errors.Add(1)
				return
			}
			abort(http.StatusServiceUnavailable, "batch %d: %v", batches, err)
			return
		}
		applied += len(ids)
		s.added.Add(int64(len(ids)))
		if !started {
			started = true
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		writeNDJSON(w, ingestAck{Batch: batches, Applied: len(ids), FirstID: ids[0], LastID: ids[len(ids)-1]})
		// Flush so the ack reaches the client before the next batch is
		// read — the ack stream is the durability signal.
		_ = rc.Flush()
	}

	if !started {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	writeNDJSON(w, ingestSummary{Done: true, Collection: c.Name(), Batches: batches, Applied: applied, Size: c.Size()})
}

func writeNDJSON(w io.Writer, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	b = append(b, '\n')
	_, _ = w.Write(b)
}
