// Command gserve serves top-k graph similarity queries over HTTP from a
// persisted index — the online half of the paper's offline/online split:
// dspm builds the index once (expensive: mining, MCS matrix, DSPM), and
// gserve answers queries in milliseconds from the mapped vector space.
// The index also grows online: POST /add maps new graphs into the fixed
// dimension space without re-mining or re-running DSPM.
//
// Usage:
//
//	dspm -gen 200 -out index.gdx
//	gserve -index index.gdx -addr :8080 -timeout 30s
//
// Endpoints:
//
//	POST /search   query graphs in the standard text format ("t #" /
//	               "v id label" / "e u v label"), one result list per
//	               query, JSON out. Query parameters: k (results per
//	               query), engine (mapped | verified | exact), factor
//	               (verified candidate multiplier), maxcand (hard cap on
//	               verified candidates).
//	POST /add      graphs in the text format; maps them into the index's
//	               dimension space and returns their assigned ids plus
//	               the new stale ratio.
//	POST /topk     deprecated v1 endpoint: /search restricted to the
//	               mapped engine with the v1 response shape.
//	GET  /healthz  liveness probe with index shape.
//	GET  /stats    cumulative query counters, latency, stale ratio.
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, waits up to -grace for in-flight requests, then exits.
// -timeout bounds each request twice over: the connection's read/write
// deadlines cover the body transfer, and the request context cancels the
// underlying Search — exact and verified engines return promptly.
//
// Example:
//
//	curl -s --data-binary @queries.graphs 'localhost:8080/search?k=5&engine=verified&factor=4'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"repro/graphdim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gserve: ")
	var (
		index   = flag.String("index", "index.gdx", "index file built by dspm (v2 binary or legacy v1 JSON)")
		addr    = flag.String("addr", ":8080", "listen address")
		k       = flag.Int("k", 10, "default number of results per query")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout (0 = unbounded)")
		grace   = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
	)
	flag.Parse()

	f, err := os.Open(*index)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := graphdim.ReadIndex(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %s: %d graphs, %d dimensions", *index, idx.Size(), len(idx.Dimensions()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", ln.Addr())
	srv := &http.Server{
		Handler:           newServer(idx, *k, *timeout),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if *timeout > 0 {
		// The per-request context only bounds the search once the body is
		// parsed; these bound the I/O around it, so a slow-body client
		// cannot pin a handler goroutine past the advertised budget.
		srv.ReadTimeout = *timeout
		srv.WriteTimeout = 2 * *timeout
	}
	if err := serve(ctx, srv, ln, *grace); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}

// serve runs srv on ln until ctx is cancelled (SIGINT/SIGTERM in main),
// then drains in-flight requests for up to grace. Split from main so the
// shutdown path is testable.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}

// maxBodyBytes caps a request body. 32 MiB is ~3 orders of magnitude
// above a realistic query batch in the text format.
const maxBodyBytes = 32 << 20

// server holds the index (safe for concurrent readers and writers: see
// graphdim.Index) and the cumulative counters reported by /stats.
// Counters are atomics — handler goroutines share no other mutable state.
type server struct {
	idx      *graphdim.Index
	defaultK int
	timeout  time.Duration
	started  time.Time

	requests  atomic.Int64 // search/topk requests answered successfully
	queries   atomic.Int64 // individual query graphs answered
	added     atomic.Int64 // graphs added via /add
	errors    atomic.Int64 // requests rejected (sum with requests for the total)
	latencyUS atomic.Int64 // cumulative successful-search latency, microseconds
}

func newServer(idx *graphdim.Index, defaultK int, timeout time.Duration) http.Handler {
	s := &server{idx: idx, defaultK: defaultK, timeout: timeout, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/add", s.handleAdd)
	mux.HandleFunc("/topk", s.handleTopK)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// requestContext derives the per-request context, bounded by the
// configured timeout; the returned cancel must be deferred.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// searchResult mirrors graphdim.Result with stable JSON field names.
type searchResult struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
}

type searchResponse struct {
	K         int              `json:"k"`
	Engine    string           `json:"engine"`
	Queries   int              `json:"queries"`
	ElapsedMS float64          `json:"elapsed_ms"`
	Results   [][]searchResult `json:"results"`
	// Matched is the number of index dimensions each query graph
	// contains — low counts mean the mapped space carries little signal
	// for that query and the verified engine is worth the extra cost.
	Matched []int `json:"matched_dimensions"`
}

// parseSearchOptions extracts the per-query knobs from the URL.
func (s *server) parseSearchOptions(r *http.Request) (graphdim.SearchOptions, error) {
	opt := graphdim.SearchOptions{K: s.defaultK}
	q := r.URL.Query()
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return opt, fmt.Errorf("k must be a positive integer, got %q", v)
		}
		opt.K = n
	}
	if v := q.Get("engine"); v != "" {
		e, err := graphdim.ParseEngine(v)
		if err != nil {
			return opt, fmt.Errorf("engine must be mapped, verified or exact, got %q", v)
		}
		opt.Engine = e
	}
	if v := q.Get("factor"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opt, fmt.Errorf("factor must be a non-negative integer, got %q", v)
		}
		opt.VerifyFactor = n
	}
	if v := q.Get("maxcand"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opt, fmt.Errorf("maxcand must be a non-negative integer, got %q", v)
		}
		opt.MaxCandidates = n
	}
	return opt, nil
}

func (s *server) readGraphs(w http.ResponseWriter, r *http.Request) ([]*graphdim.Graph, bool) {
	// Bound the request body so one oversized POST cannot exhaust server
	// memory; MaxBytesReader also closes the connection on overrun.
	gs, err := graphdim.ReadGraphs(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "parsing graphs: %v", err)
		return nil, false
	}
	if len(gs) == 0 {
		s.fail(w, http.StatusBadRequest, "no graphs in request body")
		return nil, false
	}
	return gs, true
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST query graphs in the standard text format")
		return
	}
	start := time.Now()
	opt, err := s.parseSearchOptions(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	queries, ok := s.readGraphs(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	batch, err := s.idx.SearchBatch(ctx, queries, opt)
	if err != nil {
		s.failQuery(w, ctx, err)
		return
	}
	resp := searchResponse{
		K:       opt.K,
		Engine:  opt.Engine.String(),
		Queries: len(queries),
		Results: make([][]searchResult, len(batch)),
		Matched: make([]int, len(batch)),
	}
	for i, res := range batch {
		out := make([]searchResult, len(res.Results))
		for j, r := range res.Results {
			out[j] = searchResult{ID: r.ID, Distance: r.Distance}
		}
		resp.Results[i] = out
		resp.Matched[i] = res.Matched.Count()
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1e3

	s.requests.Add(1)
	s.queries.Add(int64(len(queries)))
	s.latencyUS.Add(elapsed.Microseconds())
	writeJSON(w, http.StatusOK, resp)
}

type addResponse struct {
	IDs        []int   `json:"ids"`
	Size       int     `json:"size"`
	StaleRatio float64 `json:"stale_ratio"`
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST graphs in the standard text format")
		return
	}
	gs, ok := s.readGraphs(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	ids, err := s.idx.AddContext(ctx, gs...)
	if err != nil {
		s.failQuery(w, ctx, err)
		return
	}
	s.added.Add(int64(len(ids)))
	writeJSON(w, http.StatusOK, addResponse{
		IDs:        ids,
		Size:       s.idx.Size(),
		StaleRatio: s.idx.StaleRatio(),
	})
}

// topkResponse is the v1 response shape, kept for existing clients.
type topkResponse struct {
	K         int              `json:"k"`
	Queries   int              `json:"queries"`
	ElapsedMS float64          `json:"elapsed_ms"`
	Results   [][]searchResult `json:"results"`
}

// handleTopK is the deprecated v1 endpoint: always the mapped engine,
// only the k knob.
func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST a graph database in the standard text format")
		return
	}
	start := time.Now()
	k := s.defaultK
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.fail(w, http.StatusBadRequest, "k must be a positive integer, got %q", v)
			return
		}
		k = n
	}
	queries, ok := s.readGraphs(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	batch, err := s.idx.SearchBatch(ctx, queries, graphdim.SearchOptions{K: k})
	if err != nil {
		s.failQuery(w, ctx, err)
		return
	}
	resp := topkResponse{
		K:       k,
		Queries: len(queries),
		Results: make([][]searchResult, len(batch)),
	}
	for i, res := range batch {
		out := make([]searchResult, len(res.Results))
		for j, r := range res.Results {
			out[j] = searchResult{ID: r.ID, Distance: r.Distance}
		}
		resp.Results[i] = out
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1e3

	s.requests.Add(1)
	s.queries.Add(int64(len(queries)))
	s.latencyUS.Add(elapsed.Microseconds())
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"graphs":     s.idx.Size(),
		"dimensions": len(s.idx.Dimensions()),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	requests := s.requests.Load()
	stats := map[string]any{
		"graphs":           s.idx.Size(),
		"removed":          s.idx.Removed(),
		"dimensions":       len(s.idx.Dimensions()),
		"stale_ratio":      s.idx.StaleRatio(),
		"uptime_seconds":   time.Since(s.started).Seconds(),
		"search_requests":  requests,
		"queries_answered": s.queries.Load(),
		"graphs_added":     s.added.Load(),
		"errors":           s.errors.Load(),
	}
	if requests > 0 {
		stats["mean_latency_ms"] = float64(s.latencyUS.Load()) / float64(requests) / 1e3
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.errors.Add(1)
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// failQuery reports a SearchBatch/Add error: 503 when the request's
// deadline (or the client) cancelled the context, 400 for everything
// else. One helper so the POST endpoints cannot diverge.
func (s *server) failQuery(w http.ResponseWriter, ctx context.Context, err error) {
	status := http.StatusBadRequest
	if ctx.Err() != nil {
		status = http.StatusServiceUnavailable
	}
	s.fail(w, status, "%v", err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}
