// Command gserve serves top-k graph similarity queries over HTTP from a
// persisted index — the online half of the paper's offline/online split:
// dspm builds the index once (expensive: mining, MCS matrix, DSPM), and
// gserve answers queries in milliseconds from the mapped vector space.
//
// Usage:
//
//	dspm -gen 200 -out index.json
//	gserve -index index.json -addr :8080
//
// Endpoints:
//
//	POST /topk     query graphs in the standard text format ("t #" /
//	               "v id label" / "e u v label"), one result list per
//	               query, JSON out. ?k=10 overrides the default k.
//	GET  /healthz  liveness probe with index shape.
//	GET  /stats    cumulative query counters and latency.
//
// Example:
//
//	curl -s --data-binary @queries.graphs 'localhost:8080/topk?k=5'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/graphdim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gserve: ")
	var (
		index = flag.String("index", "index.json", "index file built by dspm")
		addr  = flag.String("addr", ":8080", "listen address")
		k     = flag.Int("k", 10, "default number of results per query")
	)
	flag.Parse()

	f, err := os.Open(*index)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := graphdim.ReadIndex(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %s: %d graphs, %d dimensions", *index, idx.Size(), len(idx.Dimensions()))

	srv := newServer(idx, *k)
	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// maxBodyBytes caps a /topk request body. 32 MiB is ~3 orders of
// magnitude above a realistic query batch in the text format.
const maxBodyBytes = 32 << 20

// server holds the immutable index (safe for concurrent readers) and the
// cumulative counters reported by /stats. Counters are atomics — handler
// goroutines never share any other mutable state.
type server struct {
	idx      *graphdim.Index
	defaultK int
	started  time.Time

	requests  atomic.Int64 // /topk requests answered successfully
	queries   atomic.Int64 // individual query graphs answered
	errors    atomic.Int64 // /topk requests rejected (sum with requests for the total)
	latencyUS atomic.Int64 // cumulative successful-/topk latency, microseconds
}

func newServer(idx *graphdim.Index, defaultK int) http.Handler {
	s := &server{idx: idx, defaultK: defaultK, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/topk", s.handleTopK)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// topkResult mirrors graphdim.Result with stable JSON field names.
type topkResult struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
}

type topkResponse struct {
	K         int            `json:"k"`
	Queries   int            `json:"queries"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Results   [][]topkResult `json:"results"`
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST a graph database in the standard text format")
		return
	}
	start := time.Now()
	k := s.defaultK
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.fail(w, http.StatusBadRequest, "k must be a positive integer, got %q", v)
			return
		}
		k = n
	}
	// Bound the request body so one oversized POST cannot exhaust server
	// memory; MaxBytesReader also closes the connection on overrun.
	queries, err := graphdim.ReadGraphs(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "parsing query graphs: %v", err)
		return
	}
	if len(queries) == 0 {
		s.fail(w, http.StatusBadRequest, "no query graphs in request body")
		return
	}
	batches, err := s.idx.TopKBatch(queries, k)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := topkResponse{
		K:       k,
		Queries: len(queries),
		Results: make([][]topkResult, len(batches)),
	}
	for i, batch := range batches {
		out := make([]topkResult, len(batch))
		for j, res := range batch {
			out[j] = topkResult{ID: res.ID, Distance: res.Distance}
		}
		resp.Results[i] = out
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1e3

	s.requests.Add(1)
	s.queries.Add(int64(len(queries)))
	s.latencyUS.Add(elapsed.Microseconds())
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"graphs":     s.idx.Size(),
		"dimensions": len(s.idx.Dimensions()),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	requests := s.requests.Load()
	stats := map[string]any{
		"graphs":           s.idx.Size(),
		"dimensions":       len(s.idx.Dimensions()),
		"uptime_seconds":   time.Since(s.started).Seconds(),
		"topk_requests":    requests,
		"queries_answered": s.queries.Load(),
		"errors":           s.errors.Load(),
	}
	if requests > 0 {
		stats["mean_latency_ms"] = float64(s.latencyUS.Load()) / float64(requests) / 1e3
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.errors.Add(1)
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}
