// Command gserve serves top-k graph similarity queries over HTTP — the
// online half of the paper's offline/online split, grown into a multi-
// collection store: dspm builds an index once (expensive: mining, MCS
// matrix, DSPM), gserve serves it from a graphdim.Store, optionally split
// across -shards parallel shards, behind a versioned REST API.
// Collections grow online (/add maps new graphs into the fixed dimension
// space without re-mining), and a background compactor rebuilds any shard
// whose stale ratio crosses -compact-threshold while readers keep
// serving.
//
// The production deployment runs against a -data directory: the store is
// opened (or initialized) there, every accepted add and remove is
// write-ahead logged and fsynced before it is acknowledged, checkpoints
// run every -checkpoint-every (plus on graceful shutdown and on demand
// via the checkpoint action), and a restart — clean or kill -9 —
// recovers exactly the acknowledged writes by replaying the log tail
// over the last checkpoint. -index seeds the default collection into a
// fresh -data store (or serves alone, volatile, without -data).
//
// Usage:
//
//	dspm -gen 200 -out index.gdx
//	gserve -data /var/lib/gserve -index index.gdx -addr :8080 \
//	  -shards 4 -compact-every 1m -checkpoint-every 5m
//
// The /v1 API (all request and error bodies are JSON except graph
// payloads, which use the standard text format "t # id" / "v id label" /
// "e u v label"):
//
//	GET    /v1/collections                   list collections
//	POST   /v1/collections?name=N&shards=S   create a collection from the
//	       graphs in the body; optional build knobs: dimensions, tau,
//	       algorithm (dspm | dspmap), k (default result count),
//	       cache_entries and cache_bytes (query-result cache bounds;
//	       omitted or 0 = no cache)
//	DELETE /v1/collections/{name}            drop a collection
//	POST   /v1/collections/{name}/search     query graphs in the body; knobs:
//	       k, engine (mapped | verified | exact), factor, maxcand
//	POST   /v1/collections/{name}/add        map graphs into the collection;
//	       a partially applied batch answers 207 with the committed ids
//	POST   /v1/collections/{name}/query      run a composable pipeline: a
//	       JSON body {"stages":[{"filter":{...}},{"search":{...}},
//	       {"group_by":{...}}]} of filter → search → aggregate stages;
//	       declarative filters push down into posting intersections and
//	       stay cacheable (see internal/pipeline); the gq CLI runs the
//	       same documents offline
//	POST   /v1/collections/{name}/ingest     bulk-load NDJSON graphs, one
//	       {"labels":[...],"edges":[[u,v,label],...]} per line, applied in
//	       ?batch=-sized groups (default 256) at one WAL fsync per group;
//	       the response streams one ack line per committed batch
//	GET    /v1/collections/{name}/stats      per-shard sizes, stale ratios,
//	       compaction counters, shard generations, query-cache and WAL
//	       counters
//	POST   /v1/collections/{name}/compact    rebuild stale shards now
//	       (?force=true rebuilds every shard with any staleness)
//	POST   /v1/collections/{name}/checkpoint persist the store and truncate
//	       replayed WAL segments (-data stores only)
//	GET    /healthz                          liveness probe
//	GET    /stats                            process-wide counters
//	GET    /metrics                          Prometheus text format:
//	       per-endpoint latency quantiles and request counts, WAL fsync
//	       timings, group-commit batch sizes, admission rejects, cache
//	       hit ratio
//
// Admission control bounds the in-flight requests per collection in two
// independent lanes — reads (search/topk) via -max-inflight-reads
// (default 256) and writes (add/ingest) via -max-inflight-writes
// (default 64; negative = unlimited). Requests beyond the lane width
// are shed immediately with 429 and a Retry-After header, before the
// body is read, so overload degrades into fast rejections rather than
// queueing collapse. cmd/gload drives this surface with an open-loop
// mixed workload and reports the latency distribution.
//
// Deprecated aliases from the unversioned API keep working against the
// default collection and answer with a Deprecation header: POST /search,
// POST /add, and the v1-shape POST /topk.
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, waits up to -grace for in-flight requests, stops the
// background compactor, checkpoints a -data store, then exits. -timeout
// bounds each request twice over: the connection's read/write deadlines
// cover the body transfer, and the request context cancels the underlying
// Search — exact and verified engines return promptly. Collection
// creation (an offline build), compaction, and checkpoints are exempt
// from -timeout and bounded only by the client's patience.
//
// Example:
//
//	curl -s --data-binary @queries.graphs \
//	  'localhost:8080/v1/collections/default/search?k=5&engine=verified&factor=4'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/graphdim"
	"repro/internal/pool"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gserve: ")
	var (
		index     = flag.String("index", "", "seed index file built by dspm (v3/v2 binary or legacy v1 JSON); required without -data, with -data it seeds the default collection if missing")
		data      = flag.String("data", "", "durable store directory (opened or created): every add/remove is write-ahead logged and survives a crash; without it online writes are volatile")
		ckpEvery  = flag.Duration("checkpoint-every", 5*time.Minute, "periodic checkpoint interval for -data stores (0 = only manual /checkpoint actions and the shutdown checkpoint)")
		addr      = flag.String("addr", ":8080", "listen address")
		k         = flag.Int("k", 10, "default number of results per query")
		shards    = flag.Int("shards", 1, "shards for the default collection")
		collName  = flag.String("collection", "default", "name of the default collection the deprecated routes hit")
		workers   = flag.Int("workers", 0, "store-wide cross-shard worker budget (0 = one per CPU)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout (0 = unbounded)")
		grace     = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
		threshold = flag.Float64("compact-threshold", 0.3, "stale ratio at which a shard is rebuilt (0 = the default 0.3, negative = never)")
		every     = flag.Duration("compact-every", 0, "background compaction scan interval (0 = manual /compact only)")
		rbTau     = flag.Float64("rebuild-tau", 0.1, "min-support ratio for compaction rebuilds of the default collection")
		rbAlgo    = flag.String("rebuild-algo", "dspmap", "dimension algorithm for compaction rebuilds: dspm or dspmap")
		rbBudget  = flag.Int64("rebuild-mcs-budget", 20000, "MCS budget for compaction rebuilds")
		cacheEnt  = flag.Int("cache-entries", 4096, "query-result cache entries for the default collection (0 = no cache)")
		cacheByte = flag.Int64("cache-bytes", 64<<20, "approximate query-result cache size in bytes for the default collection (0 = entries-only bound)")
		maxReads  = flag.Int("max-inflight-reads", defaultMaxInflightReads, "per-collection bound on in-flight search requests; beyond it requests get 429 + Retry-After (negative = unlimited)")
		maxWrites = flag.Int("max-inflight-writes", defaultMaxInflightWrites, "per-collection bound on in-flight add/ingest requests; beyond it requests get 429 + Retry-After (negative = unlimited)")
		follow    = flag.String("follow", "", "run as a read-only replication follower of this primary gserve base URL: bootstrap from its snapshot, tail its WAL, answer writes with 307 (requires -data)")
		replHB    = flag.Duration("repl-heartbeat", defaultReplHeartbeat, "heartbeat interval on replication WAL tail streams")
		memory    = flag.String("memory", "auto", "how checkpointed shard segments are served: auto (mmap where the platform supports it), map (explicitly request mmap), heap (rehydrate fully into memory)")
	)
	flag.Parse()

	if *follow != "" {
		if *data == "" {
			log.Fatal("-follow requires -data: a follower mirrors the primary's log durably")
		}
		if *index != "" {
			log.Fatal("-follow and -index are mutually exclusive: a follower seeds from the primary's snapshot")
		}
	}
	if *data == "" && *index == "" {
		log.Fatal("need -data (durable store directory) and/or -index (seed index file)")
	}
	if *rbAlgo != "dspm" && *rbAlgo != "dspmap" {
		log.Fatalf("rebuild-algo must be dspm or dspmap, got %q", *rbAlgo)
	}
	var memMode graphdim.MemoryMode
	switch *memory {
	case "auto":
		memMode = graphdim.MemoryAuto
	case "map":
		memMode = graphdim.MemoryMap
	case "heap":
		memMode = graphdim.MemoryHeap
	default:
		log.Fatalf("memory must be auto, map, or heap, got %q", *memory)
	}

	// The metrics registry exists before the store: the WAL feeds its
	// fsync telemetry through StoreOptions at open time.
	m := newServerMetrics()
	storeOpts := graphdim.StoreOptions{
		Workers: *workers,
		Memory:  memMode,
		WAL:     graphdim.WALOptions{SyncObserver: m.walObserver()},
		Compaction: graphdim.CompactionPolicy{
			StaleThreshold: *threshold,
			Interval:       *every,
		},
		OnCompaction: func(coll string, shard int, err error) {
			if err != nil {
				log.Printf("compaction %s/shard-%d failed: %v", coll, shard, err)
				return
			}
			log.Printf("compacted %s/shard-%d", coll, shard)
		},
	}
	var store *graphdim.Store
	var err error
	if *follow != "" {
		// First start of a follower: pull the primary's checkpoint image.
		// A directory that already holds a store resumes from its own
		// image plus mirrored log instead.
		booted, err := bootstrapFromPrimary(nil, *follow, *data)
		if err != nil {
			log.Fatalf("bootstrap from %s: %v", *follow, err)
		}
		if booted {
			log.Printf("bootstrapped %s from %s", *data, *follow)
		}
	}
	if *data != "" {
		// The production path: open (or initialize) the durable store.
		// OpenStore replays each collection's WAL tail, so writes the
		// previous process acknowledged are back — checkpointed or not.
		store, err = graphdim.OpenOrCreateStore(*data, storeOpts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("opened store %s: %d collections %v", *data, len(store.Collections()), store.Collections())
	} else {
		store = graphdim.NewStore(storeOpts)
		log.Printf("no -data directory: online writes are volatile and lost on restart")
	}
	defer store.Close()

	if *index != "" {
		if _, ok := store.Collection(*collName); ok {
			log.Printf("collection %q already in the store; ignoring -index %s", *collName, *index)
		} else {
			f, err := os.Open(*index)
			if err != nil {
				log.Fatal(err)
			}
			idx, err := graphdim.ReadIndex(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			// Compaction rebuilds can't recover the flags dspm was built
			// with (the .gdx file doesn't carry them), so they are sized
			// from the loaded index and the -rebuild-* flags: same
			// dimension count, DSPMap by default (its cost grows linearly
			// with the shard, where DSPM's pairwise matrix would dwarf the
			// original per-shard build).
			rebuild := graphdim.Options{
				Dimensions: len(idx.Dimensions()),
				Tau:        *rbTau,
				MCSBudget:  *rbBudget,
			}
			if *rbAlgo == "dspmap" {
				rebuild.Algorithm = graphdim.DSPMap
			}
			coll, err := store.CreateFromIndex(*collName, idx, graphdim.CollectionOptions{
				Shards:   *shards,
				Build:    rebuild,
				Defaults: graphdim.SearchOptions{K: *k},
				Cache:    graphdim.CacheOptions{MaxEntries: *cacheEnt, MaxBytes: *cacheByte},
			})
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("seeded %s into collection %q: %d graphs, %d dimensions, %d shards",
				*index, *collName, coll.Size(), len(idx.Dimensions()), coll.Shards())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", ln.Addr())
	followerID := ""
	if *follow != "" {
		if followerID, err = loadFollowerID(*data); err != nil {
			log.Fatal(err)
		}
	}
	s := newServerCfg(store, serverConfig{
		defaultColl:   *collName,
		defaultK:      *k,
		timeout:       *timeout,
		maxReads:      *maxReads,
		maxWrites:     *maxWrites,
		metrics:       m,
		follow:        *follow,
		followerID:    followerID,
		replHeartbeat: *replHB,
	})
	if s.follower != nil {
		if err := s.startFollower(ctx); err != nil {
			log.Fatal(err)
		}
		log.Printf("following %s as %q", *follow, followerID)
	}
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Long-lived replication tail streams end when Shutdown begins, so
	// the grace period drains ordinary requests, not followers.
	srv.RegisterOnShutdown(s.beginShutdown)
	if *timeout > 0 {
		// The per-request context only bounds the search once the body is
		// parsed; these bound the I/O around it, so a slow-body client
		// cannot pin a handler goroutine past the advertised budget.
		srv.ReadTimeout = *timeout
		srv.WriteTimeout = 2 * *timeout
	}
	if store.Dir() != "" && *ckpEvery > 0 {
		go s.checkpointLoop(ctx, *ckpEvery)
	}
	if err := serve(ctx, srv, ln, *grace); err != nil {
		log.Fatal(err)
	}
	if s.follower != nil {
		// The signal context is done; join the tailers before the
		// deferred store.Close can pull the log out from under one.
		s.follower.wait()
	}
	// Graceful shutdown checkpoints so the next start replays nothing;
	// skipping it (a kill) costs replay time, never data. A clean store
	// skips it too — rewriting every shard to persist nothing new would
	// make restart latency proportional to store size.
	if store.Dir() != "" && s.walDirty() {
		if err := s.runCheckpoint(); err != nil {
			log.Printf("shutdown checkpoint failed (the WAL still holds every write): %v", err)
		} else {
			log.Printf("checkpointed %s", store.Dir())
		}
	}
	log.Printf("shut down cleanly")
}

// checkpointLoop checkpoints the store every interval until ctx ends,
// skipping ticks with nothing to persist — a checkpoint rewrites every
// shard file, which a read-mostly store should not pay for twelve times
// an hour.
func (s *server) checkpointLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if !s.walDirty() {
				continue
			}
			if err := s.runCheckpoint(); err != nil {
				log.Printf("periodic checkpoint failed: %v", err)
			}
		}
	}
}

// walDirty reports whether any collection has log records the last
// checkpoint does not cover. Collections without a log (WAL disabled)
// count as dirty — there is no cheap way to tell. Unpersisted compaction
// rebuilds are deliberately not counted: skipping them costs a redundant
// re-replay after a crash, never data.
func (s *server) walDirty() bool {
	for _, name := range s.store.Collections() {
		c, ok := s.store.Collection(name)
		if !ok {
			continue
		}
		st := c.Stats()
		if st.WAL == nil || st.WAL.LastSeq != st.WAL.CheckpointSeq {
			return true
		}
	}
	return false
}

// runCheckpoint checkpoints the store and keeps the /stats counters.
func (s *server) runCheckpoint() error {
	if err := s.store.Checkpoint(); err != nil {
		s.checkpointErrors.Add(1)
		return err
	}
	s.checkpoints.Add(1)
	s.lastCheckpointMS.Store(time.Now().UnixMilli())
	return nil
}

// beginShutdown releases the long-lived replication streams (they wait
// on s.closing) so graceful shutdown does not spend the whole grace
// period on them. Wired via srv.RegisterOnShutdown.
func (s *server) beginShutdown() {
	s.closeOnce.Do(func() { close(s.closing) })
}

// serve runs srv on ln until ctx is cancelled (SIGINT/SIGTERM in main),
// then drains in-flight requests for up to grace. Split from main so the
// shutdown path is testable.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}

// maxBodyBytes caps a request body. 32 MiB is ~3 orders of magnitude
// above a realistic query batch in the text format.
const maxBodyBytes = 32 << 20

// server holds the store (safe for concurrent use: see graphdim.Store) and
// the cumulative counters reported by /stats. Counters are atomics —
// handler goroutines share no other mutable state.
type server struct {
	store       *graphdim.Store
	defaultColl string
	defaultK    int
	timeout     time.Duration
	started     time.Time
	mux         *http.ServeMux
	metrics     *serverMetrics

	// Replication: heartbeat pacing for WAL tail streams, the follower
	// runtime (nil on a primary), per-follower ack bookkeeping
	// ("coll\x00follower" → *followerAck), the count of open tail
	// streams, and a channel closed at shutdown so long-lived streams
	// drain instead of pinning the grace period.
	replHeartbeat time.Duration
	follower      *followerRuntime
	replAcks      sync.Map
	replStreams   atomic.Int64
	closing       chan struct{}
	closeOnce     sync.Once

	// Admission control: per-collection read/write lanes sized by the
	// -max-inflight-* flags. laneMap is collection name → *lanePair,
	// created lazily so dynamically created collections get lanes too.
	maxReads  int
	maxWrites int
	laneMap   sync.Map

	requests  atomic.Int64 // search/topk requests answered successfully
	queries   atomic.Int64 // individual query graphs answered
	added     atomic.Int64 // graphs added via the add endpoints
	errors    atomic.Int64 // requests rejected (sum with requests for the total)
	latencyUS atomic.Int64 // cumulative successful-search latency, microseconds

	checkpoints      atomic.Int64 // completed checkpoints (periodic, manual, shutdown)
	checkpointErrors atomic.Int64
	lastCheckpointMS atomic.Int64 // unix milliseconds of the last success, 0 = never
}

// ServeHTTP wraps every request with the latency/status instrumentation
// behind /metrics, then dispatches.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sr := &statusRecorder{ResponseWriter: w}
	s.mux.ServeHTTP(sr, r)
	code := sr.status
	if code == 0 {
		code = http.StatusOK // handler wrote nothing: net/http answers 200
	}
	s.metrics.observeRequest(endpointLabel(r), code, time.Since(start))
}

// Default admission lane widths: reads (search fan-outs) get a deep
// lane, writes (add/ingest, serialized per collection by the WAL commit
// anyway) a shallower one that keeps memory for buffered batches
// bounded.
const (
	defaultMaxInflightReads  = 256
	defaultMaxInflightWrites = 64
)

// serverConfig carries the serving knobs; the zero value of any field
// falls back to the legacy defaults, so tests can set only what they
// exercise.
type serverConfig struct {
	defaultColl string
	defaultK    int
	timeout     time.Duration
	// maxReads/maxWrites bound the in-flight requests per collection and
	// lane; 0 means the defaults above, negative means unlimited.
	maxReads  int
	maxWrites int
	// metrics is the pre-built registry (the WAL SyncObserver must exist
	// before the store opens); nil builds a fresh one.
	metrics *serverMetrics
	// follow, when set, runs the server as a replication follower of
	// that primary base URL: reads serve locally, writes answer 307.
	// followerID is its stable identity (retention holds key on it).
	follow     string
	followerID string
	// replHeartbeat paces heartbeats on idle WAL tail streams; 0 means
	// defaultReplHeartbeat.
	replHeartbeat time.Duration
}

func newServer(store *graphdim.Store, defaultColl string, defaultK int, timeout time.Duration) *server {
	return newServerCfg(store, serverConfig{defaultColl: defaultColl, defaultK: defaultK, timeout: timeout})
}

func laneWidth(n, def int) int {
	switch {
	case n == 0:
		return def
	case n < 0:
		return 0 // pool.NewGate: <= 0 is unlimited
	}
	return n
}

func newServerCfg(store *graphdim.Store, cfg serverConfig) *server {
	if cfg.metrics == nil {
		cfg.metrics = newServerMetrics()
	}
	if cfg.replHeartbeat <= 0 {
		cfg.replHeartbeat = defaultReplHeartbeat
	}
	s := &server{
		store:         store,
		defaultColl:   cfg.defaultColl,
		defaultK:      cfg.defaultK,
		timeout:       cfg.timeout,
		started:       time.Now(),
		metrics:       cfg.metrics,
		maxReads:      laneWidth(cfg.maxReads, defaultMaxInflightReads),
		maxWrites:     laneWidth(cfg.maxWrites, defaultMaxInflightWrites),
		replHeartbeat: cfg.replHeartbeat,
		closing:       make(chan struct{}),
	}
	if cfg.follow != "" {
		s.follower = newFollowerRuntime(cfg.follow, cfg.followerID)
	}
	s.registerStoreGauges()
	s.registerReplicationGauges()
	mux := http.NewServeMux()
	// Method checks live inside the handlers so that 405s (and the
	// fallback 404) carry the same JSON error shape as every other
	// failure.
	mux.HandleFunc("/v1/collections", s.handleCollections)
	mux.HandleFunc("/v1/collections/{name}", s.handleCollection)
	mux.HandleFunc("/v1/collections/{name}/{action}", s.handleCollectionAction)
	mux.HandleFunc("/v1/replication/snapshot", s.handleReplicationSnapshot)
	mux.HandleFunc("/v1/replication/{name}/wal", s.handleReplicationWAL)
	mux.HandleFunc("/v1/replication/{name}/ack", s.handleReplicationAck)
	mux.HandleFunc("/search", s.deprecated(s.handleLegacySearch))
	mux.HandleFunc("/add", s.deprecated(s.handleLegacyAdd))
	mux.HandleFunc("/topk", s.deprecated(s.handleTopK))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.fail(w, http.StatusNotFound, "no route %s %s (the API lives under /v1)", r.Method, r.URL.Path)
	})
	s.mux = mux
	return s
}

// deprecated marks the unversioned routes: they keep serving the default
// collection but advertise their /v1 successors. /topk has no same-name
// successor — its replacement is the search action.
func (s *server) deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		successor := r.URL.Path
		if successor == "/topk" {
			successor = "/search"
		}
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1/collections/%s%s>; rel=\"successor-version\"", s.defaultColl, successor))
		h(w, r)
	}
}

// clearConnDeadlines lifts the server-wide read/write deadlines off the
// connection for the endpoints exempt from -timeout (collection creation
// and compaction are offline builds): without this the connection's
// WriteTimeout, armed when the request arrived, would kill the response
// of any build outlasting it.
func clearConnDeadlines(w http.ResponseWriter) {
	rc := http.NewResponseController(w)
	// Errors mean the connection type doesn't support deadlines; then
	// there is nothing to lift.
	_ = rc.SetReadDeadline(time.Time{})
	_ = rc.SetWriteDeadline(time.Time{})
}

// requestContext derives the per-request context, bounded by the
// configured timeout; the returned cancel must be deferred.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// lanePair is one collection's admission lanes. Reads and writes are
// separate so a scan storm saturating the read lane can never starve
// the fsync-bound write path, and vice versa.
type lanePair struct {
	read  *pool.Gate
	write *pool.Gate
}

// lanes returns (creating on first use) the admission lanes for a
// collection name. Lanes are keyed by name, not *Collection, so a
// dropped-and-recreated collection reuses its lane — the bound is about
// server resources, not collection identity.
func (s *server) lanes(coll string) *lanePair {
	if v, ok := s.laneMap.Load(coll); ok {
		return v.(*lanePair)
	}
	v, _ := s.laneMap.LoadOrStore(coll, &lanePair{
		read:  pool.NewGate(s.maxReads),
		write: pool.NewGate(s.maxWrites),
	})
	return v.(*lanePair)
}

// admit claims a slot in gate or sheds the request with 429 and a
// Retry-After the client can parse. The caller must defer gate.Leave()
// on a true return.
func (s *server) admit(w http.ResponseWriter, coll, lane string, gate *pool.Gate) bool {
	if gate.TryEnter() {
		return true
	}
	s.metrics.rejectCounter(coll, lane).Inc()
	// One second is the honest answer for a lane full of requests
	// bounded by -timeout: precise queue math isn't available from a
	// gate that keeps no queue.
	w.Header().Set("Retry-After", "1")
	s.fail(w, http.StatusTooManyRequests,
		"collection %q %s lane full (%d in flight); retry after the Retry-After delay",
		coll, lane, gate.Capacity())
	return false
}

// collection resolves a collection name, answering a JSON 404 itself when
// it does not exist.
func (s *server) collection(w http.ResponseWriter, name string) (*graphdim.Collection, bool) {
	c, ok := s.store.Collection(name)
	if !ok {
		s.fail(w, http.StatusNotFound, "collection %q not found", name)
		return nil, false
	}
	return c, true
}

// searchResult mirrors graphdim.Result with stable JSON field names.
type searchResult struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
}

type searchResponse struct {
	Collection string           `json:"collection,omitempty"`
	K          int              `json:"k"`
	Engine     string           `json:"engine"`
	Queries    int              `json:"queries"`
	ElapsedMS  float64          `json:"elapsed_ms"`
	Results    [][]searchResult `json:"results"`
	// Matched is the number of index dimensions each query graph
	// contains — low counts mean the mapped space carries little signal
	// for that query and the verified engine is worth the extra cost.
	Matched []int `json:"matched_dimensions"`
}

// parseSearchOptions resolves the effective per-query options: the
// collection's defaults (falling back to the server-wide -k), overridden
// by any knobs present in the URL. The overlay happens here, with
// NoDefaults set, rather than inside Collection.Search — the handler
// knows which parameters were explicitly given, so ?engine=mapped works
// even on a collection whose default engine is not mapped (the library
// overlay cannot distinguish explicit zero values from unset ones).
func (s *server) parseSearchOptions(r *http.Request, c *graphdim.Collection) (graphdim.SearchOptions, error) {
	opt := c.Defaults()
	opt.NoDefaults = true
	if opt.K == 0 {
		opt.K = s.defaultK
	}
	q := r.URL.Query()
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return opt, fmt.Errorf("k must be a positive integer, got %q", v)
		}
		opt.K = n
	}
	if v := q.Get("engine"); v != "" {
		e, err := graphdim.ParseEngine(v)
		if err != nil {
			return opt, fmt.Errorf("engine must be mapped, verified or exact, got %q", v)
		}
		opt.Engine = e
	}
	if v := q.Get("factor"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opt, fmt.Errorf("factor must be a non-negative integer, got %q", v)
		}
		opt.VerifyFactor = n
	}
	if v := q.Get("maxcand"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opt, fmt.Errorf("maxcand must be a non-negative integer, got %q", v)
		}
		opt.MaxCandidates = n
	}
	return opt, nil
}

func (s *server) readGraphs(w http.ResponseWriter, r *http.Request) ([]*graphdim.Graph, bool) {
	// Bound the request body so one oversized POST cannot exhaust server
	// memory; MaxBytesReader also closes the connection on overrun.
	gs, err := graphdim.ReadGraphs(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "parsing graphs: %v", err)
		return nil, false
	}
	if len(gs) == 0 {
		s.fail(w, http.StatusBadRequest, "no graphs in request body")
		return nil, false
	}
	return gs, true
}

// ---- /v1 collection management ----

// collectionSummary is one row of the list response.
type collectionSummary struct {
	Name   string `json:"name"`
	Shards int    `json:"shards"`
	Graphs int    `json:"graphs"`
}

func (s *server) handleCollections(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		names := s.store.Collections()
		out := make([]collectionSummary, 0, len(names))
		for _, name := range names {
			if c, ok := s.store.Collection(name); ok {
				out = append(out, collectionSummary{Name: name, Shards: c.Shards(), Graphs: c.Size()})
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"collections": out})
	case http.MethodPost:
		if s.redirectToPrimary(w, r) {
			return
		}
		s.handleCreateCollection(w, r)
	default:
		s.fail(w, http.StatusMethodNotAllowed, "GET lists collections, POST creates one")
	}
}

func (s *server) handleCreateCollection(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		s.fail(w, http.StatusBadRequest, "name parameter is required")
		return
	}
	opt := graphdim.CollectionOptions{}
	var err error
	intParam := func(key string, dst *int) bool {
		v := q.Get(key)
		if v == "" {
			return true
		}
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "%s must be a non-negative integer, got %q", key, v)
			return false
		}
		*dst = n
		return true
	}
	if !intParam("shards", &opt.Shards) || !intParam("dimensions", &opt.Build.Dimensions) ||
		!intParam("k", &opt.Defaults.K) || !intParam("cache_entries", &opt.Cache.MaxEntries) {
		return
	}
	if v := q.Get("cache_bytes"); v != "" {
		n, aerr := strconv.ParseInt(v, 10, 64)
		if aerr != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "cache_bytes must be a non-negative integer, got %q", v)
			return
		}
		opt.Cache.MaxBytes = n
	}
	if v := q.Get("tau"); v != "" {
		opt.Build.Tau, err = strconv.ParseFloat(v, 64)
		if err != nil || opt.Build.Tau <= 0 || opt.Build.Tau > 1 {
			s.fail(w, http.StatusBadRequest, "tau must be in (0, 1], got %q", v)
			return
		}
	}
	switch q.Get("algorithm") {
	case "", "dspm":
	case "dspmap":
		opt.Build.Algorithm = graphdim.DSPMap
	default:
		s.fail(w, http.StatusBadRequest, "algorithm must be dspm or dspmap, got %q", q.Get("algorithm"))
		return
	}
	// Creation is a full offline build; it is deliberately exempt from the
	// per-request -timeout (context and connection deadlines both) and
	// bounded by the client connection instead.
	clearConnDeadlines(w)
	db, ok := s.readGraphs(w, r)
	if !ok {
		return
	}
	c, err := s.store.Create(r.Context(), name, db, opt)
	if err != nil {
		s.failQuery(w, r, r.Context(), err)
		return
	}
	writeJSON(w, http.StatusCreated, collectionStatsJSON(c))
}

func (s *server) handleCollection(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	switch r.Method {
	case http.MethodGet:
		if c, ok := s.collection(w, name); ok {
			writeJSON(w, http.StatusOK, s.collectionStats(c))
		}
	case http.MethodDelete:
		if s.redirectToPrimary(w, r) {
			return
		}
		if err := s.store.Drop(name); err != nil {
			s.fail(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
	default:
		s.fail(w, http.StatusMethodNotAllowed, "GET reads collection stats, DELETE drops the collection")
	}
}

func (s *server) handleCollectionAction(w http.ResponseWriter, r *http.Request) {
	c, ok := s.collection(w, r.PathValue("name"))
	if !ok {
		return
	}
	switch action := r.PathValue("action"); action {
	case "search":
		s.handleSearch(w, r, c)
	case "add":
		s.handleAdd(w, r, c)
	case "ingest":
		s.handleIngest(w, r, c)
	case "query":
		s.handleQuery(w, r, c)
	case "stats":
		if r.Method != http.MethodGet {
			s.fail(w, http.StatusMethodNotAllowed, "GET reads collection stats")
			return
		}
		writeJSON(w, http.StatusOK, s.collectionStats(c))
	case "compact":
		s.handleCompact(w, r, c)
	case "checkpoint":
		s.handleCheckpoint(w, r, c)
	default:
		s.fail(w, http.StatusNotFound, "unknown action %q (want search, add, ingest, query, stats, compact or checkpoint)", action)
	}
}

// ---- search / add / compact ----

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request, c *graphdim.Collection) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST query graphs in the standard text format")
		return
	}
	if !s.checkFreshness(w, r, c) {
		return
	}
	gate := s.lanes(c.Name()).read
	if !s.admit(w, c.Name(), "read", gate) {
		return
	}
	defer gate.Leave()
	start := time.Now()
	opt, err := s.parseSearchOptions(r, c)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	queries, ok := s.readGraphs(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	batch, err := c.SearchBatch(ctx, queries, opt)
	if err != nil {
		s.failQuery(w, r, ctx, err)
		return
	}
	resp := searchResponse{
		Collection: c.Name(),
		K:          opt.K,
		Engine:     batch[0].Engine.String(),
		Queries:    len(queries),
		Results:    make([][]searchResult, len(batch)),
		Matched:    make([]int, len(batch)),
	}
	for i, res := range batch {
		out := make([]searchResult, len(res.Results))
		for j, r := range res.Results {
			out[j] = searchResult{ID: r.ID, Distance: r.Distance}
		}
		resp.Results[i] = out
		resp.Matched[i] = res.Matched.Count()
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1e3

	s.requests.Add(1)
	s.queries.Add(int64(len(queries)))
	s.latencyUS.Add(elapsed.Microseconds())
	w.Header().Set(freshnessHeader, freshnessToken(c))
	writeJSON(w, http.StatusOK, resp)
}

type addResponse struct {
	Collection string `json:"collection,omitempty"`
	IDs        []int  `json:"ids"`
	Size       int    `json:"size"`
	// StaleRatio is the stalest shard's ratio — the value the compaction
	// policy triggers on; StaleRatios lists every shard.
	StaleRatio  float64   `json:"stale_ratio"`
	StaleRatios []float64 `json:"stale_ratios"`
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request, c *graphdim.Collection) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST graphs in the standard text format")
		return
	}
	if s.redirectToPrimary(w, r) {
		return
	}
	gate := s.lanes(c.Name()).write
	if !s.admit(w, c.Name(), "write", gate) {
		return
	}
	defer gate.Leave()
	gs, ok := s.readGraphs(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	ids, err := c.Add(ctx, gs...)
	if err != nil {
		var pe *graphdim.PartialAddError
		if errors.As(err, &pe) {
			// Part of the batch committed (and, on a durable store, is
			// logged): a flat 400 would hide that from the caller. Answer
			// 207 with exactly the ids that landed.
			s.added.Add(int64(len(pe.Applied)))
			s.writePartialAdd(w, c.Name(), pe)
			return
		}
		s.failQuery(w, r, ctx, err)
		return
	}
	s.added.Add(int64(len(ids)))
	ratios := c.StaleRatios()
	resp := addResponse{Collection: c.Name(), IDs: ids, Size: c.Size(), StaleRatios: ratios}
	for _, r := range ratios {
		if r > resp.StaleRatio {
			resp.StaleRatio = r
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// partialAddResponse is the 207 body for a batch that landed partially:
// the applied ids are committed and searchable, the rest are not.
type partialAddResponse struct {
	Error      string `json:"error"`
	Collection string `json:"collection"`
	AppliedIDs []int  `json:"applied_ids"`
	Applied    int    `json:"applied"`
	Total      int    `json:"total"`
}

func (s *server) writePartialAdd(w http.ResponseWriter, collection string, pe *graphdim.PartialAddError) {
	s.errors.Add(1)
	applied := pe.Applied
	if applied == nil {
		applied = []int{}
	}
	writeJSON(w, http.StatusMultiStatus, partialAddResponse{
		Error:      pe.Error(),
		Collection: collection,
		AppliedIDs: applied,
		Applied:    len(applied),
		Total:      pe.Total,
	})
}

// handleCheckpoint persists the store to its -data directory and
// truncates the replayed WAL segments — the manual flush operators call
// before planned maintenance.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request, c *graphdim.Collection) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST triggers a checkpoint")
		return
	}
	if s.store.Dir() == "" {
		s.fail(w, http.StatusConflict, "store has no data directory (start gserve with -data)")
		return
	}
	// A checkpoint streams every shard to disk; like creation and
	// compaction it ignores -timeout.
	clearConnDeadlines(w)
	if err := s.runCheckpoint(); err != nil {
		s.fail(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	resp := map[string]any{
		"collection":  c.Name(),
		"checkpoints": s.checkpoints.Load(),
	}
	if st := c.Stats(); st.WAL != nil {
		resp["wal"] = walStatsJSONOf(st.WAL)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleCompact(w http.ResponseWriter, r *http.Request, c *graphdim.Collection) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST triggers compaction")
		return
	}
	force := r.URL.Query().Get("force") == "true"
	// Compaction is a rebuild; like creation it ignores -timeout.
	clearConnDeadlines(w)
	n, err := c.Compact(r.Context(), force)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "compacted %d shards, then: %v", n, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"collection":   c.Name(),
		"compacted":    n,
		"stale_ratios": c.StaleRatios(),
	})
}

// ---- deprecated unversioned routes ----

func (s *server) handleLegacySearch(w http.ResponseWriter, r *http.Request) {
	c, ok := s.collection(w, s.defaultColl)
	if !ok {
		return
	}
	s.handleSearch(w, r, c)
}

func (s *server) handleLegacyAdd(w http.ResponseWriter, r *http.Request) {
	c, ok := s.collection(w, s.defaultColl)
	if !ok {
		return
	}
	s.handleAdd(w, r, c)
}

// topkResponse is the v1 response shape, kept for existing clients.
type topkResponse struct {
	K         int              `json:"k"`
	Queries   int              `json:"queries"`
	ElapsedMS float64          `json:"elapsed_ms"`
	Results   [][]searchResult `json:"results"`
}

// handleTopK is the deprecated v1 endpoint: always the mapped engine,
// only the k knob.
func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST a graph database in the standard text format")
		return
	}
	c, ok := s.collection(w, s.defaultColl)
	if !ok {
		return
	}
	gate := s.lanes(c.Name()).read
	if !s.admit(w, c.Name(), "read", gate) {
		return
	}
	defer gate.Leave()
	start := time.Now()
	k := s.defaultK
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.fail(w, http.StatusBadRequest, "k must be a positive integer, got %q", v)
			return
		}
		k = n
	}
	queries, ok := s.readGraphs(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	batch, err := c.SearchBatch(ctx, queries, graphdim.SearchOptions{K: k, Engine: graphdim.EngineMapped})
	if err != nil {
		s.failQuery(w, r, ctx, err)
		return
	}
	resp := topkResponse{
		K:       k,
		Queries: len(queries),
		Results: make([][]searchResult, len(batch)),
	}
	for i, res := range batch {
		out := make([]searchResult, len(res.Results))
		for j, r := range res.Results {
			out[j] = searchResult{ID: r.ID, Distance: r.Distance}
		}
		resp.Results[i] = out
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1e3

	s.requests.Add(1)
	s.queries.Add(int64(len(queries)))
	s.latencyUS.Add(elapsed.Microseconds())
	w.Header().Set(freshnessHeader, freshnessToken(c))
	writeJSON(w, http.StatusOK, resp)
}

// ---- health and stats ----

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	names := s.store.Collections()
	graphs := 0
	for _, name := range names {
		if c, ok := s.store.Collection(name); ok {
			graphs += c.Size()
		}
	}
	out := map[string]any{
		"status":      "ok",
		"graphs":      graphs,
		"collections": len(names),
		"role":        "primary",
	}
	if f := s.follower; f != nil {
		out["role"] = "follower"
		out["primary"] = f.primaryURL
		lag := map[string]any{}
		for _, name := range names {
			if st, ok := f.tailerStatus(name); ok {
				entry := map[string]any{
					"connected":   st.Connected,
					"lag_records": lagRecords(st),
				}
				if !st.LastProgress.IsZero() {
					entry["lag_seconds"] = time.Since(st.LastProgress).Seconds()
				}
				lag[name] = entry
			}
		}
		out["replication"] = lag
		if f.bootstrapNeeded() {
			// Still serving (possibly stale) reads, but permanently behind:
			// surface it where probes look first.
			out["status"] = "degraded"
			out["needs_bootstrap"] = true
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// cacheStatsJSON mirrors graphdim.CacheStats with stable JSON names.
type cacheStatsJSON struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// walStatsJSON mirrors graphdim.WALStats with stable JSON names.
type walStatsJSON struct {
	Appends       int64  `json:"appends"`
	Syncs         int64  `json:"syncs"`
	SyncNanos     int64  `json:"sync_nanos"`
	MaxBatch      int    `json:"max_batch"`
	LastSeq       uint64 `json:"last_seq"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	Segments      int    `json:"segments"`
	Bytes         int64  `json:"bytes"`
}

func walStatsJSONOf(st *graphdim.WALStats) *walStatsJSON {
	return &walStatsJSON{
		Appends:       st.Appends,
		Syncs:         st.Syncs,
		SyncNanos:     st.SyncNanos,
		MaxBatch:      st.MaxBatch,
		LastSeq:       st.LastSeq,
		CheckpointSeq: st.CheckpointSeq,
		Segments:      st.Segments,
		Bytes:         st.Bytes,
	}
}

// shardStatsJSON mirrors graphdim.ShardStats with stable JSON names.
type shardStatsJSON struct {
	Live                int     `json:"live"`
	Total               int     `json:"total"`
	Dimensions          int     `json:"dimensions"`
	StaleRatio          float64 `json:"stale_ratio"`
	Compactions         int64   `json:"compactions"`
	LastCompactionError string  `json:"last_compaction_error,omitempty"`
}

type collectionStatsResponse struct {
	Name   string           `json:"name"`
	Live   int              `json:"graphs"`
	NextID int              `json:"next_id"`
	Shards []shardStatsJSON `json:"shards"`
	// Generations is the per-shard mutation counter the query cache
	// fences on; it moves on every add, remove, and compaction swap.
	Generations []uint64 `json:"generations"`
	// Cache reports the query-result cache, omitted when the collection
	// was created without one.
	Cache *cacheStatsJSON `json:"cache,omitempty"`
	// WAL reports the write-ahead log, omitted when the store runs
	// without one (no -data directory).
	WAL *walStatsJSON `json:"wal,omitempty"`
	// Replication reports the collection's replication role and
	// progress; omitted on a volatile store (nothing to ship). Populated
	// by server.collectionStats, not collectionStatsJSON — the role is
	// server state, not collection state.
	Replication *replicationStatsJSON `json:"replication,omitempty"`
}

func collectionStatsJSON(c *graphdim.Collection) collectionStatsResponse {
	st := c.Stats()
	out := collectionStatsResponse{Name: st.Name, Live: st.Live, NextID: st.NextID, Generations: st.Generations}
	if st.Cache != nil {
		out.Cache = &cacheStatsJSON{
			Entries:       st.Cache.Entries,
			Bytes:         st.Cache.Bytes,
			Hits:          st.Cache.Hits,
			Misses:        st.Cache.Misses,
			Evictions:     st.Cache.Evictions,
			Invalidations: st.Cache.Invalidations,
		}
	}
	if st.WAL != nil {
		out.WAL = walStatsJSONOf(st.WAL)
	}
	for _, sh := range st.Shards {
		out.Shards = append(out.Shards, shardStatsJSON{
			Live:                sh.Live,
			Total:               sh.Total,
			Dimensions:          sh.Dimensions,
			StaleRatio:          sh.StaleRatio,
			Compactions:         sh.Compactions,
			LastCompactionError: sh.LastCompactionError,
		})
	}
	return out
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	requests := s.requests.Load()
	colls := map[string]collectionStatsResponse{}
	for _, name := range s.store.Collections() {
		if c, ok := s.store.Collection(name); ok {
			colls[name] = s.collectionStats(c)
		}
	}
	role := "primary"
	if s.follower != nil {
		role = "follower"
	}
	stats := map[string]any{
		"collections":      colls,
		"role":             role,
		"uptime_seconds":   time.Since(s.started).Seconds(),
		"search_requests":  requests,
		"queries_answered": s.queries.Load(),
		"graphs_added":     s.added.Load(),
		"errors":           s.errors.Load(),
	}
	if requests > 0 {
		stats["mean_latency_ms"] = float64(s.latencyUS.Load()) / float64(requests) / 1e3
	}
	if f := s.follower; f != nil {
		stats["primary"] = f.primaryURL
		if f.bootstrapNeeded() {
			stats["needs_bootstrap"] = true
		}
	}
	if dir := s.store.Dir(); dir != "" {
		stats["data_dir"] = dir
		stats["checkpoints"] = s.checkpoints.Load()
		stats["checkpoint_errors"] = s.checkpointErrors.Load()
		if ms := s.lastCheckpointMS.Load(); ms > 0 {
			stats["last_checkpoint_unix_ms"] = ms
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.errors.Add(1)
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// failQuery reports a search/add/create error, separating the three
// cancellation stories: the client hung up (nobody is listening — log
// and drop the response, a 503 here would only pollute the error class
// the operator alerts on), the server's own -timeout deadline expired
// (503, the server really was too slow), or a plain bad request (400).
// One helper so the POST endpoints cannot diverge. ctx is the
// requestContext-derived context the operation actually ran under.
func (s *server) failQuery(w http.ResponseWriter, r *http.Request, ctx context.Context, err error) {
	switch {
	case r.Context().Err() != nil:
		// The base request context ends only when the client disconnects
		// (or the server shuts down) — before any -timeout verdict.
		s.errors.Add(1)
		log.Printf("%s %s abandoned by client: %v", r.Method, r.URL.Path, err)
	case ctx.Err() != nil:
		s.fail(w, http.StatusServiceUnavailable, "%v", err)
	default:
		s.fail(w, http.StatusBadRequest, "%v", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}
