// Replication wiring: gserve as a WAL-shipping primary and as a
// read-only follower.
//
// Any -data server is implicitly a primary — three endpoints expose its
// durable state to followers:
//
//	GET  /v1/replication/snapshot              the last checkpoint as a
//	     tar archive (store.json plus shard files); a follower's
//	     bootstrap image
//	GET  /v1/replication/{name}/wal?after=N    an unbounded chunked
//	     stream of the collection's settled WAL records after N, in the
//	     repl envelope format; heartbeats when caught up. A ?follower=ID
//	     parameter registers a retention hold so checkpoints never
//	     truncate segments the follower still needs
//	POST /v1/replication/{name}/ack?follower=ID&seq=N
//	     advances the follower's hold, releasing segments ≤ N
//
// A -follow server is a follower: it bootstraps its empty -data
// directory from the primary's snapshot, runs one repl.Tailer per
// collection feeding graphdim's ReplicaApplier, serves searches from
// local state, and answers writes with a 307 to the primary. Search
// responses everywhere carry an X-Graphdim-Freshness token
// ("<applied>:<gen,gen,...>"); clients that need read-your-writes pass
// the applied sequence back as ?min_freshness= and a lagging follower
// answers 412 instead of serving stale results.
package main

import (
	"context"
	crand "crypto/rand"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/graphdim"
	"repro/internal/repl"
	"repro/internal/wal"
)

// freshnessHeader carries the serving collection's read-consistency
// token on every search response.
const freshnessHeader = "X-Graphdim-Freshness"

// defaultReplHeartbeat paces heartbeats on an idle WAL tail stream. It
// bounds two things: how stale a follower's notion of the primary's
// applied sequence can get, and how long a dead connection lingers
// before a write error surfaces.
const defaultReplHeartbeat = 3 * time.Second

// freshnessToken renders a collection's freshness coordinates:
// "<applied>:<g0>,<g1>,...". The applied sequence is the comparable
// half (the primary's total write order); the per-shard generation
// vector rides along for observability only.
func freshnessToken(c *graphdim.Collection) string {
	applied, gens := c.Freshness()
	var b strings.Builder
	b.WriteString(strconv.FormatUint(applied, 10))
	b.WriteByte(':')
	for i, g := range gens {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(g, 10))
	}
	return b.String()
}

// checkFreshness enforces ?min_freshness= on a read: a full token or a
// bare applied sequence is accepted, and a collection behind it answers
// 412 with its current token so the client can retry here or fall back
// to the primary. True means the read may proceed.
func (s *server) checkFreshness(w http.ResponseWriter, r *http.Request, c *graphdim.Collection) bool {
	v := r.URL.Query().Get("min_freshness")
	if v == "" {
		return true
	}
	num := v
	if i := strings.IndexByte(num, ':'); i >= 0 {
		num = num[:i]
	}
	min, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "min_freshness must be an applied sequence or freshness token, got %q", v)
		return false
	}
	if applied := c.AppliedSeq(); applied < min {
		w.Header().Set(freshnessHeader, freshnessToken(c))
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusPreconditionFailed,
			"collection %q is at applied sequence %d, behind the requested freshness %d", c.Name(), applied, min)
		return false
	}
	return true
}

// ---- primary side ----

// followerAck is the per-(collection, follower) bookkeeping behind
// stats: the acknowledged sequence, when it last moved, and how many
// tail streams the follower has open. The retention hold itself lives
// in the WAL (graphdim.WALRetain); this is the observable shadow.
type followerAck struct {
	mu      sync.Mutex
	acked   uint64
	lastAck time.Time
	streams int
}

func (s *server) followerInfo(coll, follower string) *followerAck {
	key := coll + "\x00" + follower
	if v, ok := s.replAcks.Load(key); ok {
		return v.(*followerAck)
	}
	v, _ := s.replAcks.LoadOrStore(key, &followerAck{})
	return v.(*followerAck)
}

// handleReplicationSnapshot streams the store's checkpoint image. A
// dirty WAL triggers a checkpoint first — the image a follower
// acknowledges against should be as fresh as possible (it shrinks the
// tail the follower must then stream), and on a store that has never
// persisted it guarantees a manifest exists at all.
func (s *server) handleReplicationSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET streams a checkpoint snapshot")
		return
	}
	if s.store.Dir() == "" {
		s.fail(w, http.StatusConflict, "store has no data directory (start gserve with -data); a volatile store cannot be a replication primary")
		return
	}
	if s.walDirty() {
		if err := s.runCheckpoint(); err != nil {
			log.Printf("snapshot checkpoint failed (serving the previous image): %v", err)
		}
	}
	// A snapshot streams every shard; like checkpoints it ignores -timeout.
	clearConnDeadlines(w)
	w.Header().Set("Content-Type", "application/x-tar")
	cw := &countingWriter{w: w}
	if err := s.store.WriteSnapshotTar(cw); err != nil {
		if cw.n == 0 {
			s.fail(w, http.StatusInternalServerError, "snapshot: %v", err)
			return
		}
		// Mid-stream there is no way to change the status; abort the
		// connection so the follower sees a broken tar, never a silently
		// short one.
		log.Printf("replication snapshot failed mid-stream: %v", err)
		panic(http.ErrAbortHandler)
	}
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// handleReplicationWAL is the tail stream: it drains the collection's
// settled records after ?after=, heartbeats when caught up, and
// long-polls on WAL commits. The connection lives until the client
// leaves or the server shuts down. With ?follower=ID the position is
// pinned against checkpoint truncation before the first byte is served.
func (s *server) handleReplicationWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET tails the write-ahead log")
		return
	}
	c, ok := s.collection(w, r.PathValue("name"))
	if !ok {
		return
	}
	q := r.URL.Query()
	var after uint64
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "after must be a sequence number, got %q", v)
			return
		}
		after = n
	}
	stream, err := c.StreamWAL(after)
	if err != nil {
		s.fail(w, http.StatusConflict, "%v", err)
		return
	}
	defer stream.Close()
	if follower := q.Get("follower"); follower != "" {
		// The hold must exist before any byte ships: everything past the
		// follower's position survives checkpoints from here on. It
		// deliberately persists across disconnects — only acks move it.
		c.WALRetain(follower, after)
		fa := s.followerInfo(c.Name(), follower)
		fa.mu.Lock()
		fa.streams++
		fa.mu.Unlock()
		defer func() {
			fa.mu.Lock()
			fa.streams--
			fa.mu.Unlock()
		}()
	}
	s.replStreams.Add(1)
	defer s.replStreams.Add(-1)

	// Prime the stream before committing to a 200: a truncated position
	// can still answer 410 Gone, which the tailer maps to a snapshot
	// re-bootstrap.
	first, haveFirst, err := stream.Next(c.AppliedSeq())
	if err != nil {
		if errors.Is(err, wal.ErrTruncated) {
			s.fail(w, http.StatusGone, "%v", err)
			return
		}
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}

	// The stream outlives -timeout by design.
	clearConnDeadlines(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	hb := time.NewTicker(s.replHeartbeat)
	defer hb.Stop()
	ctx := r.Context()
	if haveFirst {
		if err := repl.WriteRecord(w, first); err != nil {
			return
		}
	}
	for {
		// Grab the commit signal before draining: a record committed
		// during the drain closes this channel and wakes the next wait
		// immediately.
		commits := c.WALCommits()
		for {
			rec, ok, err := stream.Next(c.AppliedSeq())
			if err != nil {
				if errors.Is(err, wal.ErrTruncated) {
					// Checkpointed away mid-stream (no retention hold, or a
					// hold released by a stale ack): the follower must
					// re-bootstrap.
					repl.WriteTruncated(w)
					rc.Flush()
					return
				}
				log.Printf("replication stream %s: %v", c.Name(), err)
				panic(http.ErrAbortHandler)
			}
			if !ok {
				break
			}
			if err := repl.WriteRecord(w, rec); err != nil {
				return
			}
		}
		// Caught up. The heartbeat doubles as the settle signal: the
		// follower may apply its buffered add batch because any amendment
		// would have been streamed before the watermark let us get here.
		if err := repl.WriteHeartbeat(w, c.AppliedSeq()); err != nil {
			return
		}
		if err := rc.Flush(); err != nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-s.closing:
			return
		case <-commits:
		case <-hb.C:
		}
	}
}

// handleReplicationAck advances a follower's retention hold. Best-effort
// on the follower side — a lost ack only delays truncation, never
// correctness — so the answer is a bare 204.
func (s *server) handleReplicationAck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST acknowledges replicated sequences")
		return
	}
	c, ok := s.collection(w, r.PathValue("name"))
	if !ok {
		return
	}
	q := r.URL.Query()
	follower := q.Get("follower")
	v := q.Get("seq")
	if follower == "" || v == "" {
		s.fail(w, http.StatusBadRequest, "follower and seq parameters are required")
		return
	}
	seq, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "seq must be a sequence number, got %q", v)
		return
	}
	c.WALRetain(follower, seq)
	fa := s.followerInfo(c.Name(), follower)
	fa.mu.Lock()
	if seq > fa.acked {
		fa.acked = seq
	}
	fa.lastAck = time.Now()
	fa.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// ---- follower side ----

// followerRuntime is the follower-mode state: the primary's address,
// this follower's stable identity, and one tailer per collection.
type followerRuntime struct {
	primaryURL string
	id         string

	mu      sync.Mutex
	tailers map[string]*repl.Tailer
	// wg joins the tailer goroutines: the store must not close under a
	// tailer mid-apply, so shutdown cancels their context and waits here.
	wg sync.WaitGroup

	// needsBootstrap latches when the primary reports our position
	// truncated: tailing has stopped and only an operator wiping the
	// data directory and restarting (which re-bootstraps from a fresh
	// snapshot) recovers. Deliberately not automatic — it discards the
	// local image.
	needsBootstrap bool
}

func newFollowerRuntime(primaryURL, id string) *followerRuntime {
	return &followerRuntime{
		primaryURL: strings.TrimSuffix(primaryURL, "/"),
		id:         id,
		tailers:    make(map[string]*repl.Tailer),
	}
}

func (f *followerRuntime) tailerStatus(coll string) (repl.Status, bool) {
	f.mu.Lock()
	t := f.tailers[coll]
	f.mu.Unlock()
	if t == nil {
		return repl.Status{}, false
	}
	return t.Status(), true
}

func (f *followerRuntime) bootstrapNeeded() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.needsBootstrap
}

// wait blocks until every tailer goroutine has exited; call after
// cancelling their context and before closing the store.
func (f *followerRuntime) wait() { f.wg.Wait() }

// startFollower spawns one WAL tailer per collection present in the
// local (bootstrapped) store. Collections created on the primary after
// the bootstrap are not picked up until the follower re-bootstraps.
func (s *server) startFollower(ctx context.Context) error {
	f := s.follower
	for _, name := range s.store.Collections() {
		c, ok := s.store.Collection(name)
		if !ok {
			continue
		}
		rep, err := c.Replica()
		if err != nil {
			return err
		}
		t, err := repl.NewTailer(repl.Config{
			PrimaryURL: f.primaryURL,
			Collection: name,
			FollowerID: f.id,
			Applier:    rep,
		})
		if err != nil {
			return err
		}
		f.mu.Lock()
		f.tailers[name] = t
		f.mu.Unlock()
		f.wg.Add(1)
		go func(name string) {
			defer f.wg.Done()
			err := t.Run(ctx)
			if errors.Is(err, repl.ErrNeedsBootstrap) {
				f.mu.Lock()
				f.needsBootstrap = true
				f.mu.Unlock()
				log.Printf("follower: collection %q fell behind the primary's retained log; wipe %s and restart to re-bootstrap", name, s.store.Dir())
				return
			}
			if ctx.Err() == nil {
				log.Printf("follower: tailer for %q exited: %v", name, err)
			}
		}(name)
	}
	return nil
}

// bootstrapFromPrimary fetches the primary's checkpoint snapshot into
// dir when dir holds no store yet, and reports whether it did. An
// existing local store resumes from its own image and mirrored log
// instead — the normal restart path.
func bootstrapFromPrimary(client *http.Client, primaryURL, dir string) (bool, error) {
	if _, err := os.Stat(filepath.Join(dir, "store.json")); err == nil {
		return false, nil
	}
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(strings.TrimSuffix(primaryURL, "/") + "/v1/replication/snapshot")
	if err != nil {
		return false, fmt.Errorf("fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("primary answered %s to the snapshot fetch: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if err := graphdim.ExtractSnapshotTar(dir, resp.Body); err != nil {
		return false, err
	}
	return true, nil
}

// loadFollowerID reads (minting and persisting on first start) the
// follower's stable identity from replication.json in the data
// directory.
func loadFollowerID(dataDir string) (string, error) {
	statePath := filepath.Join(dataDir, "replication.json")
	st, err := repl.LoadState(statePath)
	if err != nil {
		return "", err
	}
	if st.FollowerID == "" {
		st.FollowerID = newFollowerID()
		if err := st.Save(statePath); err != nil {
			return "", err
		}
	}
	return st.FollowerID, nil
}

// newFollowerID mints a follower identity: hostname plus random suffix.
// It is generated once and persisted (replication.json in the data
// directory) — the primary keys retention holds on it, so it must
// survive restarts.
func newFollowerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "follower"
	}
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		return fmt.Sprintf("%s-%d", host, time.Now().UnixNano())
	}
	return fmt.Sprintf("%s-%x", host, b)
}

// redirectToPrimary answers a follower-side write with a 307 pointing
// at the primary: the method and body are preserved by conforming
// clients, and the JSON body names the target for everyone else. True
// means the response was written.
func (s *server) redirectToPrimary(w http.ResponseWriter, r *http.Request) bool {
	if s.follower == nil {
		return false
	}
	target := s.follower.primaryURL + r.URL.RequestURI()
	w.Header().Set("Location", target)
	writeJSON(w, http.StatusTemporaryRedirect, map[string]string{
		"error":   "this server is a read-only replication follower; retry the write against the primary",
		"primary": target,
	})
	return true
}

// lagRecords is the replay lag in records one tailer reports.
func lagRecords(st repl.Status) uint64 {
	if st.PrimaryApplied > st.LocalApplied {
		return st.PrimaryApplied - st.LocalApplied
	}
	return 0
}

// ---- stats ----

// followerStatJSON is one registered follower in a primary's stats.
type followerStatJSON struct {
	ID        string `json:"id"`
	AckedSeq  uint64 `json:"acked_seq"`
	Streams   int    `json:"streams"`
	LastAckMS int64  `json:"last_ack_unix_ms,omitempty"`
}

// replicationStatsJSON is the per-collection replication block in
// stats responses; the Role discriminates which fields are meaningful.
type replicationStatsJSON struct {
	Role       string `json:"role"`
	AppliedSeq uint64 `json:"applied_seq"`
	LastSeq    uint64 `json:"last_seq"`

	// Primary fields.
	Followers []followerStatJSON `json:"followers,omitempty"`

	// Follower fields.
	Primary        string  `json:"primary,omitempty"`
	Connected      bool    `json:"connected,omitempty"`
	NeedsBootstrap bool    `json:"needs_bootstrap,omitempty"`
	Reconnects     uint64  `json:"reconnects,omitempty"`
	RecordsApplied uint64  `json:"records_applied,omitempty"`
	PrimaryApplied uint64  `json:"primary_applied,omitempty"`
	LagRecords     uint64  `json:"lag_records"`
	LagSeconds     float64 `json:"lag_seconds,omitempty"`
	LastError      string  `json:"last_error,omitempty"`
}

// replicationStats builds the replication block for one collection: the
// follower's tailer view in -follow mode, the registered-follower table
// on a durable primary, nil on a volatile store (which has no log to
// ship).
func (s *server) replicationStats(c *graphdim.Collection) *replicationStatsJSON {
	if f := s.follower; f != nil {
		out := &replicationStatsJSON{
			Role:       "follower",
			Primary:    f.primaryURL,
			AppliedSeq: c.AppliedSeq(),
			LastSeq:    c.LastWALSeq(),
		}
		if st, ok := f.tailerStatus(c.Name()); ok {
			out.Connected = st.Connected
			out.NeedsBootstrap = st.NeedsBootstrap
			out.Reconnects = st.Reconnects
			out.RecordsApplied = st.RecordsApplied
			out.PrimaryApplied = st.PrimaryApplied
			if st.PrimaryApplied > st.LocalApplied {
				out.LagRecords = st.PrimaryApplied - st.LocalApplied
			}
			if !st.LastProgress.IsZero() {
				out.LagSeconds = time.Since(st.LastProgress).Seconds()
			}
			out.LastError = st.LastError
		}
		return out
	}
	if s.store.Dir() == "" {
		return nil
	}
	out := &replicationStatsJSON{
		Role:       "primary",
		AppliedSeq: c.AppliedSeq(),
		LastSeq:    c.LastWALSeq(),
	}
	prefix := c.Name() + "\x00"
	s.replAcks.Range(func(k, v any) bool {
		key := k.(string)
		if !strings.HasPrefix(key, prefix) {
			return true
		}
		fa := v.(*followerAck)
		fa.mu.Lock()
		fs := followerStatJSON{ID: strings.TrimPrefix(key, prefix), AckedSeq: fa.acked, Streams: fa.streams}
		if !fa.lastAck.IsZero() {
			fs.LastAckMS = fa.lastAck.UnixMilli()
		}
		fa.mu.Unlock()
		out.Followers = append(out.Followers, fs)
		return true
	})
	sort.Slice(out.Followers, func(i, j int) bool { return out.Followers[i].ID < out.Followers[j].ID })
	return out
}

// collectionStats is collectionStatsJSON plus the server-level
// replication block.
func (s *server) collectionStats(c *graphdim.Collection) collectionStatsResponse {
	out := collectionStatsJSON(c)
	out.Replication = s.replicationStats(c)
	return out
}

// registerReplicationGauges adds the replication series to /metrics.
// They register only when the server can actually replicate — follower
// gauges in -follow mode, primary gauges on a durable store — so a
// volatile server's scrape shape is unchanged.
func (s *server) registerReplicationGauges() {
	if f := s.follower; f != nil {
		eachStatus := func(fn func(repl.Status)) {
			f.mu.Lock()
			tailers := make([]*repl.Tailer, 0, len(f.tailers))
			for _, t := range f.tailers {
				tailers = append(tailers, t)
			}
			f.mu.Unlock()
			for _, t := range tailers {
				fn(t.Status())
			}
		}
		s.metrics.reg.Gauge("gserve_replication_lag_records", "",
			"replay lag behind the primary in records (max over collections)",
			func() float64 {
				var max uint64
				eachStatus(func(st repl.Status) {
					if st.PrimaryApplied > st.LocalApplied && st.PrimaryApplied-st.LocalApplied > max {
						max = st.PrimaryApplied - st.LocalApplied
					}
				})
				return float64(max)
			})
		s.metrics.reg.Gauge("gserve_replication_lag_seconds", "",
			"seconds since the last record or heartbeat arrived (max over collections)",
			func() float64 {
				var max float64
				eachStatus(func(st repl.Status) {
					if !st.LastProgress.IsZero() {
						if lag := time.Since(st.LastProgress).Seconds(); lag > max {
							max = lag
						}
					}
				})
				return max
			})
		s.metrics.reg.Gauge("gserve_replication_records_applied", "",
			"records replicated and applied locally since startup",
			func() float64 {
				var sum uint64
				eachStatus(func(st repl.Status) { sum += st.RecordsApplied })
				return float64(sum)
			})
		s.metrics.reg.Gauge("gserve_replication_connected", "",
			"1 when every collection's tailer is connected to the primary",
			func() float64 {
				all := 1.0
				eachStatus(func(st repl.Status) {
					if !st.Connected {
						all = 0
					}
				})
				return all
			})
		s.metrics.reg.Gauge("gserve_replication_needs_bootstrap", "",
			"1 when the primary truncated past this follower and a wipe-and-restart is required",
			func() float64 {
				if s.follower.bootstrapNeeded() {
					return 1
				}
				return 0
			})
		return
	}
	if s.store.Dir() == "" {
		return
	}
	s.metrics.reg.Gauge("gserve_replication_followers", "",
		"registered replication followers (collection-follower retention holds)",
		func() float64 {
			n := 0
			s.replAcks.Range(func(any, any) bool { n++; return true })
			return float64(n)
		})
	s.metrics.reg.Gauge("gserve_replication_streams", "",
		"open WAL tail streams",
		func() float64 { return float64(s.replStreams.Load()) })
}
