package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/graphdim"
	"repro/internal/dataset"
)

// replTestHeartbeat keeps tail streams chatty so tests converge fast.
const replTestHeartbeat = 20 * time.Millisecond

// newPrimaryServer opens (or reopens) a durable store in dir, seeds the
// default collection on first open, and serves it with fast replication
// heartbeats.
func newPrimaryServer(t testing.TB, dir string) (*httptest.Server, *server, *graphdim.Store) {
	t.Helper()
	store, err := graphdim.OpenOrCreateStore(dir, graphdim.StoreOptions{})
	if err != nil {
		t.Fatalf("OpenOrCreateStore: %v", err)
	}
	if _, ok := store.Collection("default"); !ok {
		if _, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{Shards: 2}); err != nil {
			t.Fatalf("CreateFromIndex: %v", err)
		}
	}
	s := newServerCfg(store, serverConfig{
		defaultColl: "default", defaultK: 10, timeout: 30 * time.Second,
		replHeartbeat: replTestHeartbeat,
	})
	return httptest.NewServer(s), s, store
}

// followerProc is one follower "process": killing it closes everything
// the way a crash would (minus the fsynced mirror, which survives).
type followerProc struct {
	ts     *httptest.Server
	s      *server
	store  *graphdim.Store
	cancel context.CancelFunc
}

// startFollowerProc bootstraps dir from the primary if needed, opens the
// store, and starts the tailers — the in-process equivalent of
// `gserve -data dir -follow primaryURL`.
func startFollowerProc(t testing.TB, primaryURL, dir string) *followerProc {
	t.Helper()
	if _, err := bootstrapFromPrimary(nil, primaryURL, dir); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	store, err := graphdim.OpenStore(dir, graphdim.StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore(follower): %v", err)
	}
	id, err := loadFollowerID(dir)
	if err != nil {
		t.Fatalf("loadFollowerID: %v", err)
	}
	s := newServerCfg(store, serverConfig{
		defaultColl: "default", defaultK: 10, timeout: 30 * time.Second,
		follow: primaryURL, followerID: id, replHeartbeat: replTestHeartbeat,
	})
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.startFollower(ctx); err != nil {
		cancel()
		t.Fatalf("startFollower: %v", err)
	}
	return &followerProc{ts: httptest.NewServer(s), s: s, store: store, cancel: cancel}
}

func (fp *followerProc) kill() {
	fp.cancel()
	fp.s.follower.wait()
	fp.ts.Close()
	fp.store.Close()
}

func waitUntil(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// addGraphsHTTP posts graphs to the add endpoint and returns the ids.
func addGraphsHTTP(t *testing.T, baseURL string, gs []*graphdim.Graph) []int {
	t.Helper()
	var buf bytes.Buffer
	if err := graphdim.WriteGraphs(&buf, gs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/collections/default/add", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		IDs []int `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: status %d", resp.StatusCode)
	}
	return out.IDs
}

// searchResults runs one search and returns the decoded result rows
// plus the freshness header.
func searchResults(t *testing.T, baseURL, query string, params string) ([][]searchResult, string, int) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/collections/default/search?"+params, "text/plain", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fresh := resp.Header.Get("X-Graphdim-Freshness")
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fresh, resp.StatusCode
	}
	var out struct {
		Results [][]searchResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Results, fresh, resp.StatusCode
}

// TestReplicationFollowerConvergesAndRedirects is the happy path end to
// end over real HTTP: snapshot bootstrap, WAL tailing, bit-identical
// follower reads, the freshness token, 307 write redirects, and the
// role surfaces in healthz and stats.
func TestReplicationFollowerConvergesAndRedirects(t *testing.T) {
	pts, _, pstore := newPrimaryServer(t, t.TempDir())
	defer pts.Close()
	defer pstore.Close()
	pc, _ := pstore.Collection("default")

	extra := dataset.Chemical(dataset.ChemConfig{N: 6, MinVertices: 8, MaxVertices: 12, Seed: 41})
	ids := addGraphsHTTP(t, pts.URL, extra)

	fp := startFollowerProc(t, pts.URL, t.TempDir())
	defer fp.kill()
	fc, ok := fp.store.Collection("default")
	if !ok {
		t.Fatal("follower store has no default collection after bootstrap")
	}
	waitUntil(t, 10*time.Second, "follower catch-up", func() bool {
		return fc.AppliedSeq() >= pc.AppliedSeq()
	})

	// Identical reads for the replicated prefix, including the graphs
	// added after the snapshot was cut.
	var qbuf bytes.Buffer
	if err := graphdim.WriteGraphs(&qbuf, extra[:2]); err != nil {
		t.Fatal(err)
	}
	query := qbuf.String()
	pr, pfresh, pcode := searchResults(t, pts.URL, query, "k=40")
	fr, ffresh, fcode := searchResults(t, fp.ts.URL, query, "k=40")
	if pcode != 200 || fcode != 200 {
		t.Fatalf("search: primary %d, follower %d", pcode, fcode)
	}
	if !reflect.DeepEqual(pr, fr) {
		t.Fatalf("follower results diverge from primary:\nprimary:  %v\nfollower: %v", pr, fr)
	}
	if pfresh == "" || ffresh == "" {
		t.Fatalf("missing freshness headers: primary %q follower %q", pfresh, ffresh)
	}
	// The token's applied half must compare: the follower has caught up,
	// so passing the primary's token back to the follower succeeds.
	if _, _, code := searchResults(t, fp.ts.URL, query, "k=5&min_freshness="+pfresh); code != 200 {
		t.Fatalf("caught-up follower rejected min_freshness=%s with %d", pfresh, code)
	}

	// Writes answer 307 with the primary as the target...
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	resp, err := noFollow.Post(fp.ts.URL+"/v1/collections/default/add", "text/plain", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower add: status %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, pts.URL) {
		t.Fatalf("Location %q does not point at the primary %s", loc, pts.URL)
	}
	// ...and a standard client follows them transparently (307 preserves
	// method and body), so the write lands on the primary.
	before := pc.Size()
	var abuf bytes.Buffer
	if err := graphdim.WriteGraphs(&abuf, extra[2:3]); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(fp.ts.URL+"/v1/collections/default/add", "text/plain", &abuf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pc.Size() != before+1 {
		t.Fatalf("redirected add: status %d, primary size %d (was %d)", resp.StatusCode, pc.Size(), before)
	}

	// Role surfaces: follower healthz and the primary's follower table.
	var health map[string]any
	resp, err = http.Get(fp.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["role"] != "follower" || health["primary"] != pts.URL {
		t.Fatalf("follower healthz = %v", health)
	}
	waitUntil(t, 10*time.Second, "primary to see the follower's ack", func() bool {
		n, _, held := pc.WALRetention()
		return held && n == 1
	})
	var stats struct {
		Replication *replicationStatsJSON `json:"replication"`
	}
	resp, err = http.Get(pts.URL + "/v1/collections/default/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Replication == nil || stats.Replication.Role != "primary" || len(stats.Replication.Followers) != 1 {
		t.Fatalf("primary replication stats = %+v", stats.Replication)
	}
	_ = ids
}

// TestReplicationFreshnessGate pins the 412 contract: a follower that
// has not replayed up to the requested sequence refuses the read and
// names its own position, and serves it once caught up.
func TestReplicationFreshnessGate(t *testing.T) {
	pts, _, pstore := newPrimaryServer(t, t.TempDir())
	defer pts.Close()
	defer pstore.Close()
	pc, _ := pstore.Collection("default")

	// Bootstrap the follower image, then write on the primary while the
	// follower's tailers are deliberately NOT running: it is durably
	// behind.
	fdir := t.TempDir()
	if _, err := bootstrapFromPrimary(nil, pts.URL, fdir); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	extra := dataset.Chemical(dataset.ChemConfig{N: 3, MinVertices: 8, MaxVertices: 12, Seed: 43})
	addGraphsHTTP(t, pts.URL, extra)

	fstore, err := graphdim.OpenStore(fdir, graphdim.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fstore.Close()
	id, err := loadFollowerID(fdir)
	if err != nil {
		t.Fatal(err)
	}
	fs := newServerCfg(fstore, serverConfig{
		defaultColl: "default", defaultK: 10, timeout: 30 * time.Second,
		follow: pts.URL, followerID: id, replHeartbeat: replTestHeartbeat,
	})
	fts := httptest.NewServer(fs)
	defer fts.Close()

	var qbuf bytes.Buffer
	if err := graphdim.WriteGraphs(&qbuf, extra[:1]); err != nil {
		t.Fatal(err)
	}
	query := qbuf.String()
	want := pc.AppliedSeq()

	_, fresh, code := searchResults(t, fts.URL, query, "k=5&min_freshness="+strconv.FormatUint(want, 10))
	if code != http.StatusPreconditionFailed {
		t.Fatalf("lagging follower answered %d to min_freshness=%d, want 412", code, want)
	}
	// The 412 carries the follower's current token so clients can see
	// how far behind it is.
	if fresh == "" {
		t.Fatal("412 response missing the freshness header")
	}
	got, err := strconv.ParseUint(fresh[:strings.IndexByte(fresh, ':')], 10, 64)
	if err != nil || got >= want {
		t.Fatalf("412 freshness token %q should carry an applied sequence below %d", fresh, want)
	}
	// Without the gate the stale read is allowed (eventual consistency
	// is the default), and a malformed bound is a 400.
	if _, _, code := searchResults(t, fts.URL, query, "k=5"); code != 200 {
		t.Fatalf("ungated stale read answered %d", code)
	}
	if _, _, code := searchResults(t, fts.URL, query, "k=5&min_freshness=nope"); code != http.StatusBadRequest {
		t.Fatalf("malformed min_freshness answered %d, want 400", code)
	}

	// Start the tailers; the same gated request must succeed once the
	// follower has replayed past the bound.
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); fs.follower.wait() }()
	if err := fs.startFollower(ctx); err != nil {
		t.Fatal(err)
	}
	fc, _ := fstore.Collection("default")
	waitUntil(t, 10*time.Second, "follower catch-up", func() bool { return fc.AppliedSeq() >= want })
	if _, _, code := searchResults(t, fts.URL, query, "k=5&min_freshness="+strconv.FormatUint(want, 10)); code != 200 {
		t.Fatalf("caught-up follower answered %d to the same gate", code)
	}
}

// TestReplicationKillResumeProperty is the randomized kill-and-resume
// property test: a follower is killed at random points mid-stream —
// sometimes with its mirrored log tail torn mid-frame, as a crash
// between write and fsync would leave it — restarted over the same
// directory, and must always converge to reads bit-identical with the
// primary without ever re-bootstrapping.
func TestReplicationKillResumeProperty(t *testing.T) {
	seed := int64(0xC0FFEE)
	if v := os.Getenv("REPL_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("REPL_SEED: %v", err)
		}
		seed = n
	}
	t.Logf("seed %d (override with REPL_SEED)", seed)
	rng := rand.New(rand.NewSource(seed))

	pts, _, pstore := newPrimaryServer(t, t.TempDir())
	defer pts.Close()
	defer pstore.Close()
	pc, _ := pstore.Collection("default")
	fdir := t.TempDir()

	var added []int
	iterations := 5
	for i := 0; i < iterations; i++ {
		// Random write batch on the primary: adds, sometimes a remove.
		n := 1 + rng.Intn(4)
		batch := dataset.Chemical(dataset.ChemConfig{N: n, MinVertices: 8, MaxVertices: 12, Seed: int64(100 + i)})
		ids, err := pc.Add(context.Background(), batch...)
		if err != nil {
			t.Fatalf("iter %d: Add: %v", i, err)
		}
		added = append(added, ids...)
		if len(added) > 2 && rng.Intn(2) == 0 {
			victim := added[rng.Intn(len(added))]
			// Removing an already-removed id errors; tolerate it.
			pc.Remove(victim)
		}

		fp := startFollowerProc(t, pts.URL, fdir)
		if last := i == iterations-1; last {
			// Final life: let it fully converge.
			waitUntil(t, 15*time.Second, "final follower catch-up", func() bool {
				fc, _ := fp.store.Collection("default")
				return fc.AppliedSeq() >= pc.AppliedSeq()
			})
			assertFollowerMatchesPrimary(t, pts.URL, fp.ts.URL, pc)
			if fp.s.follower.bootstrapNeeded() {
				t.Fatal("follower latched needsBootstrap; retention failed to protect it")
			}
			fp.kill()
			break
		}
		// Kill mid-stream at a random point.
		time.Sleep(time.Duration(rng.Intn(60)) * time.Millisecond)
		fp.kill()
		if rng.Intn(2) == 0 {
			tearWALTail(t, rng, filepath.Join(fdir, "default", "wal"))
		}
	}
}

// tearWALTail chops 1–16 bytes off the newest WAL segment, simulating a
// crash that tore the last frame mid-write. Open-time recovery must
// truncate the torn frame and resume from the surviving prefix.
func tearWALTail(t *testing.T, rng *rand.Rand, walDir string) {
	t.Helper()
	ents, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatalf("reading wal dir: %v", err)
	}
	newest := ""
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".wal") && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		return
	}
	path := filepath.Join(walDir, newest)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	const headerLen = 8 // "GWALSEG1"
	if fi.Size() <= headerLen {
		return
	}
	cut := int64(1 + rng.Intn(16))
	if fi.Size()-cut < headerLen {
		cut = fi.Size() - headerLen
	}
	if err := os.Truncate(path, fi.Size()-cut); err != nil {
		t.Fatalf("tearing %s: %v", path, err)
	}
	t.Logf("tore %d bytes off %s", cut, newest)
}

// assertFollowerMatchesPrimary compares full k=50 result lists for a
// spread of query graphs over HTTP — distances included, so the
// follower's state must be bit-identical, not merely similar.
func assertFollowerMatchesPrimary(t *testing.T, primaryURL, followerURL string, pc *graphdim.Collection) {
	t.Helper()
	var queries []*graphdim.Graph
	for id := 0; len(queries) < 5 && id < pc.Stats().NextID; id++ {
		if g, ok := pc.Graph(id); ok {
			queries = append(queries, g)
		}
	}
	var buf bytes.Buffer
	if err := graphdim.WriteGraphs(&buf, queries); err != nil {
		t.Fatal(err)
	}
	query := buf.String()
	pr, _, pcode := searchResults(t, primaryURL, query, "k=50&engine=verified")
	fr, _, fcode := searchResults(t, followerURL, query, "k=50&engine=verified")
	if pcode != 200 || fcode != 200 {
		t.Fatalf("search: primary %d, follower %d", pcode, fcode)
	}
	if !reflect.DeepEqual(pr, fr) {
		t.Fatalf("follower diverged from primary after kill-and-resume:\nprimary:  %v\nfollower: %v", pr, fr)
	}
}
