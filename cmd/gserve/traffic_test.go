package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/graphdim"
	"repro/internal/dataset"
)

// ndjsonBody renders graphs in the ingest line format.
func ndjsonBody(t *testing.T, gs []*graphdim.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	for _, g := range gs {
		line := ingestGraph{Labels: make([]int, g.N())}
		for v := 0; v < g.N(); v++ {
			line.Labels[v] = int(g.VertexLabel(v))
		}
		for _, e := range g.Edges() {
			line.Edges = append(line.Edges, [3]int{e.U, e.V, int(e.Label)})
		}
		b, err := json.Marshal(line)
		if err != nil {
			t.Fatalf("marshal ingest line: %v", err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.String()
}

func extraGraphs(t *testing.T, n, seed int) []*graphdim.Graph {
	t.Helper()
	return dataset.Chemical(dataset.ChemConfig{N: n, MinVertices: 8, MaxVertices: 12, Seed: int64(seed)})
}

// TestIngestStreamsPerBatchAcks drives the happy path: 10 graphs in
// batches of 4 must produce acks [4 4 2] with contiguous ids and a done
// summary, and the ingested graphs must be searchable.
func TestIngestStreamsPerBatchAcks(t *testing.T) {
	ts, coll := newTestServer(t, 2, 30*time.Second)
	seed := coll.Size()
	extra := extraGraphs(t, 10, 101)

	resp, err := http.Post(ts.URL+"/v1/collections/default/ingest?batch=4",
		"application/x-ndjson", strings.NewReader(ndjsonBody(t, extra)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var acks []ingestAck
	var summary ingestSummary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"done"`) {
			if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
				t.Fatalf("summary line %q: %v", sc.Text(), err)
			}
			continue
		}
		var ack ingestAck
		if err := json.Unmarshal(sc.Bytes(), &ack); err != nil {
			t.Fatalf("ack line %q: %v", sc.Text(), err)
		}
		acks = append(acks, ack)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	wantSizes := []int{4, 4, 2}
	if len(acks) != len(wantSizes) {
		t.Fatalf("got %d acks %+v, want %d", len(acks), acks, len(wantSizes))
	}
	next := seed
	for i, ack := range acks {
		if ack.Batch != i+1 || ack.Applied != wantSizes[i] || ack.Error != "" {
			t.Fatalf("ack %d = %+v, want batch=%d applied=%d", i, ack, i+1, wantSizes[i])
		}
		if ack.FirstID != next || ack.LastID != next+wantSizes[i]-1 {
			t.Fatalf("ack %d ids [%d,%d], want [%d,%d]", i, ack.FirstID, ack.LastID, next, next+wantSizes[i]-1)
		}
		next += wantSizes[i]
	}
	if !summary.Done || summary.Applied != 10 || summary.Batches != 3 || summary.Size != seed+10 {
		t.Fatalf("summary = %+v, want done applied=10 batches=3 size=%d", summary, seed+10)
	}
	if coll.Size() != seed+10 {
		t.Fatalf("collection size = %d, want %d", coll.Size(), seed+10)
	}

	// The ingested graphs are live: one of them must rank itself at
	// distance zero.
	var qbuf bytes.Buffer
	if err := graphdim.WriteGraphs(&qbuf, extra[:1]); err != nil {
		t.Fatal(err)
	}
	sresp, err := http.Post(ts.URL+"/v1/collections/default/search?k="+strconv.Itoa(seed+10), "text/plain", strings.NewReader(qbuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var out searchResponse
	if err := json.NewDecoder(sresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range out.Results[0] {
		if r.ID == seed && r.Distance == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingested graph %d not found at distance 0: %+v", seed, out.Results[0])
	}
}

// TestIngestRejectsBadInput covers the error surface: bad method, bad
// batch parameter, malformed first line (clean 400), and a malformed
// line after committed batches (in-band error, prefix stays).
func TestIngestRejectsBadInput(t *testing.T) {
	ts, coll := newTestServer(t, 1, 30*time.Second)
	seed := coll.Size()

	get, err := http.Get(ts.URL + "/v1/collections/default/ingest")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest: status %d, want 405", get.StatusCode)
	}

	for _, tc := range []struct{ name, url, body string }{
		{"bad batch", "/v1/collections/default/ingest?batch=zero", `{"labels":[1]}`},
		{"negative batch", "/v1/collections/default/ingest?batch=-4", `{"labels":[1]}`},
		{"malformed json", "/v1/collections/default/ingest", `{"labels":`},
		{"bad edge", "/v1/collections/default/ingest", `{"labels":[1,2],"edges":[[0,5,0]]}`},
		{"empty graph", "/v1/collections/default/ingest", `{"labels":[]}`},
	} {
		resp, err := http.Post(ts.URL+tc.url, "application/x-ndjson", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	// Empty body is a valid no-op stream.
	resp, err := http.Post(ts.URL+"/v1/collections/default/ingest", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	var summary ingestSummary
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !summary.Done || summary.Batches != 0 {
		t.Fatalf("empty ingest: status %d summary %+v", resp.StatusCode, summary)
	}

	// A bad line after a committed batch: the batch's ack arrives, then
	// an in-band error summary; the committed prefix stays.
	body := ndjsonBody(t, extraGraphs(t, 2, 55)) + "{\"labels\":[-1]}\n"
	resp, err = http.Post(ts.URL+"/v1/collections/default/ingest?batch=2", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-stream failure: status %d, want 200 (error is in-band)", resp.StatusCode)
	}
	lines, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Split(strings.TrimSpace(string(lines)), "\n")
	if len(parts) != 2 {
		t.Fatalf("got %d response lines %q, want ack + error summary", len(parts), parts)
	}
	var ack ingestAck
	if err := json.Unmarshal([]byte(parts[0]), &ack); err != nil || ack.Applied != 2 {
		t.Fatalf("first line %q: ack err=%v applied=%d", parts[0], err, ack.Applied)
	}
	if err := json.Unmarshal([]byte(parts[1]), &summary); err != nil || summary.Error == "" || summary.Applied != 2 {
		t.Fatalf("second line %q: summary err=%v %+v", parts[1], err, summary)
	}
	if coll.Size() != seed+2 {
		t.Fatalf("size = %d, want committed prefix %d", coll.Size(), seed+2)
	}
}

// TestIngestCrashRecoveryAckedPrefix is the HTTP-level durability proof
// for ingest: batches acknowledged over the stream survive a kill -9
// (close without checkpoint); the batch still in flight when the client
// died does not. Recovery replays exactly the acked prefix.
func TestIngestCrashRecoveryAckedPrefix(t *testing.T) {
	dir := t.TempDir()
	store, err := graphdim.OpenOrCreateStore(dir, graphdim.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, "default", 10, 30*time.Second))
	coll, _ := store.Collection("default")
	seed := coll.Size()

	extra := extraGraphs(t, 6, 77)
	lines := strings.Split(strings.TrimSpace(ndjsonBody(t, extra)), "\n")

	// Stream two 2-graph batches, read their acks, then die mid-stream:
	// the request body breaks with half of batch 3 sent.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/collections/default/ingest?batch=2", pr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, line := range lines[:4] {
			io.WriteString(pw, line+"\n")
		}
	}()
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	acked := 0
	for acked < 4 && sc.Scan() {
		var ack ingestAck
		if err := json.Unmarshal(sc.Bytes(), &ack); err != nil {
			t.Fatalf("ack line %q: %v", sc.Text(), err)
		}
		if ack.Error != "" {
			t.Fatalf("unexpected in-band error: %+v", ack)
		}
		acked += ack.Applied
	}
	if acked != 4 {
		t.Fatalf("acked %d graphs before crash, want 4", acked)
	}
	// Half a line of batch 3, then the client "crashes".
	io.WriteString(pw, lines[4][:len(lines[4])/2])
	pw.CloseWithError(fmt.Errorf("client process died"))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Kill the server: no graceful shutdown, no checkpoint — the acked
	// batches exist only as fsynced WAL records.
	ts.Close()
	store.Close()

	store2, err := graphdim.OpenStore(dir, graphdim.StoreOptions{})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer store2.Close()
	coll2, ok := store2.Collection("default")
	if !ok {
		t.Fatal("collection lost")
	}
	if coll2.Size() != seed+4 {
		t.Fatalf("recovered size = %d, want exactly the acked prefix %d", coll2.Size(), seed+4)
	}
	// The acked graphs are live and searchable after recovery.
	res, err := coll2.Search(t.Context(), extra[0], graphdim.SearchOptions{K: seed + 4})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Results {
		if r.ID == seed && r.Distance == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("acked ingested graph %d not recovered: %+v", seed, res.Results)
	}
}

// TestAdmissionLanesShedIndependently saturates one lane and checks the
// other keeps serving: reads shed with a parseable 429 while writes
// land, and vice versa.
func TestAdmissionLanesShedIndependently(t *testing.T) {
	store := graphdim.NewStore(graphdim.StoreOptions{})
	t.Cleanup(store.Close)
	coll, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := newServerCfg(store, serverConfig{defaultColl: "default", defaultK: 10, timeout: 30 * time.Second, maxReads: 1, maxWrites: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	query := queriesText(t, coll, 1)
	addBody := func(seed int) string {
		var buf bytes.Buffer
		if err := graphdim.WriteGraphs(&buf, extraGraphs(t, 1, seed)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Saturate the read lane the way a slow scan would: the slot is held
	// for the duration.
	readGate := s.lanes("default").read
	if !readGate.TryEnter() {
		t.Fatal("could not saturate read lane")
	}
	resp := post("/v1/collections/default/search", query)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("search under full read lane: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if sec, err := strconv.Atoi(ra); err != nil || sec < 1 {
		t.Fatalf("Retry-After %q is not a parseable positive integer", ra)
	}
	var errBody struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil || errBody.Error == "" {
		t.Fatalf("429 body not the JSON error shape: %v %+v", err, errBody)
	}
	resp.Body.Close()

	// Writes still complete while reads shed — the lanes are separate.
	resp = post("/v1/collections/default/add", addBody(201))
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("add under full READ lane: status %d body %s, want 200", resp.StatusCode, body)
	}
	resp.Body.Close()
	// Ingest rides the write lane too.
	resp = post("/v1/collections/default/ingest", ndjsonBody(t, extraGraphs(t, 1, 202)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest under full READ lane: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	readGate.Leave()
	resp = post("/v1/collections/default/search", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after lane freed: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// Now the write lane: adds and ingests shed, searches keep landing.
	writeGate := s.lanes("default").write
	if !writeGate.TryEnter() {
		t.Fatal("could not saturate write lane")
	}
	for _, path := range []string{"/v1/collections/default/add", "/v1/collections/default/ingest"} {
		body := addBody(203)
		if strings.HasSuffix(path, "ingest") {
			body = ndjsonBody(t, extraGraphs(t, 1, 204))
		}
		resp = post(path, body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s under full write lane: status %d, want 429", path, resp.StatusCode)
		}
		if _, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil {
			t.Fatalf("%s: Retry-After %q not parseable", path, resp.Header.Get("Retry-After"))
		}
		resp.Body.Close()
	}
	resp = post("/v1/collections/default/search", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search under full WRITE lane: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	writeGate.Leave()

	if got := readGate.Rejects(); got != 1 {
		t.Fatalf("read lane rejects = %d, want 1", got)
	}
	if got := writeGate.Rejects(); got != 2 {
		t.Fatalf("write lane rejects = %d, want 2", got)
	}
}

// TestMetricsEndpointShape is the golden test for /metrics: after a
// known request mix the series set must match exactly — names and
// labels are the contract dashboards depend on — and the values must
// add up.
func TestMetricsEndpointShape(t *testing.T) {
	store := graphdim.NewStore(graphdim.StoreOptions{})
	t.Cleanup(store.Close)
	coll, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{
		Shards: 1,
		Cache:  graphdim.CacheOptions{MaxEntries: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newServerCfg(store, serverConfig{defaultColl: "default", defaultK: 10, timeout: 30 * time.Second, maxReads: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Known mix: 2 searches (one will be repeated for a cache hit), 1
	// add, 1 shed search.
	query := queriesText(t, coll, 1)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/collections/default/search", "text/plain", strings.NewReader(query))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search %d: status %d", i, resp.StatusCode)
		}
	}
	var abuf bytes.Buffer
	if err := graphdim.WriteGraphs(&abuf, extraGraphs(t, 1, 301)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/collections/default/add", "text/plain", strings.NewReader(abuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	gate := s.lanes("default").read
	gate.TryEnter()
	resp, err = http.Post(ts.URL+"/v1/collections/default/search", "text/plain", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed search: status %d, want 429", resp.StatusCode)
	}
	gate.Leave()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// The series-name set is the golden contract. Values are checked
	// separately where they are deterministic.
	var series []string
	values := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable metrics line %q", line)
		}
		series = append(series, name)
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %s: value %q not a float", name, val)
		}
		values[name] = f
	}
	sort.Strings(series)
	wantSeries := []string{
		`gserve_admission_rejected_total{collection="default",lane="read"}`,
		`gserve_cache_hit_ratio`,
		`gserve_http_request_duration_seconds_count{endpoint="add"}`,
		`gserve_http_request_duration_seconds_count{endpoint="search"}`,
		`gserve_http_request_duration_seconds_sum{endpoint="add"}`,
		`gserve_http_request_duration_seconds_sum{endpoint="search"}`,
		`gserve_http_request_duration_seconds{endpoint="add",quantile="0.5"}`,
		`gserve_http_request_duration_seconds{endpoint="add",quantile="0.99"}`,
		`gserve_http_request_duration_seconds{endpoint="add",quantile="0.999"}`,
		`gserve_http_request_duration_seconds{endpoint="search",quantile="0.5"}`,
		`gserve_http_request_duration_seconds{endpoint="search",quantile="0.99"}`,
		`gserve_http_request_duration_seconds{endpoint="search",quantile="0.999"}`,
		`gserve_http_requests_total{code="200",endpoint="add"}`,
		`gserve_http_requests_total{code="200",endpoint="search"}`,
		`gserve_http_requests_total{code="429",endpoint="search"}`,
		`gserve_wal_fsync_duration_seconds_count`,
		`gserve_wal_fsync_duration_seconds_sum`,
		`gserve_wal_fsync_duration_seconds{quantile="0.5"}`,
		`gserve_wal_fsync_duration_seconds{quantile="0.99"}`,
		`gserve_wal_fsync_duration_seconds{quantile="0.999"}`,
		`gserve_wal_group_commit_records_count`,
		`gserve_wal_group_commit_records_sum`,
		`gserve_wal_group_commit_records{quantile="0.5"}`,
		`gserve_wal_group_commit_records{quantile="0.99"}`,
		`gserve_wal_group_commit_records{quantile="0.999"}`,
		`gserve_wal_max_batch_records`,
	}
	sort.Strings(wantSeries)
	if !reflect.DeepEqual(series, wantSeries) {
		t.Fatalf("series set drifted:\n got %v\nwant %v", series, wantSeries)
	}

	// Value sanity on the deterministic counters.
	checks := map[string]float64{
		`gserve_http_requests_total{code="200",endpoint="search"}`:          2,
		`gserve_http_requests_total{code="200",endpoint="add"}`:             1,
		`gserve_http_requests_total{code="429",endpoint="search"}`:          1,
		`gserve_admission_rejected_total{collection="default",lane="read"}`: 1,
		`gserve_http_request_duration_seconds_count{endpoint="search"}`:     3,
		`gserve_http_request_duration_seconds_count{endpoint="add"}`:        1,
	}
	for name, wantV := range checks {
		if values[name] != wantV {
			t.Fatalf("%s = %v, want %v", name, values[name], wantV)
		}
	}
	if r := values["gserve_cache_hit_ratio"]; r <= 0 || r > 1 {
		t.Fatalf("cache_hit_ratio = %v, want in (0,1] after a repeated query", r)
	}
	if v := values[`gserve_http_request_duration_seconds{endpoint="search",quantile="0.5"}`]; v <= 0 {
		t.Fatalf("search p50 = %v, want > 0", v)
	}

	// The quantile labels follow the Prometheus summary convention.
	if !regexp.MustCompile(`quantile="0\.999"`).Match(raw) {
		t.Fatalf("no p999 series in output")
	}
}

// TestIngestMidStreamFailureReportsInBand drops the collection between
// two batches of an in-flight ingest stream. The status line is long
// gone (200 with batch 1's ack already flushed), so the failure must
// arrive in-band: a summary line with the error and the exact durable
// prefix, not a hung or silently truncated stream.
func TestIngestMidStreamFailureReportsInBand(t *testing.T) {
	store, err := graphdim.OpenOrCreateStore(t.TempDir(), graphdim.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	if _, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, "default", 10, 30*time.Second))
	t.Cleanup(ts.Close)

	lines := strings.Split(strings.TrimSpace(ndjsonBody(t, extraGraphs(t, 4, 83))), "\n")
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/collections/default/ingest?batch=2", pr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, line := range lines[:2] {
			io.WriteString(pw, line+"\n")
		}
	}()
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (committed at first ack)", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no ack for batch 1")
	}
	var ack ingestAck
	if err := json.Unmarshal(sc.Bytes(), &ack); err != nil || ack.Applied != 2 || ack.Error != "" {
		t.Fatalf("batch 1 ack = %q (err %v), want applied=2", sc.Text(), err)
	}

	// Drop the collection out from under the stream: its WAL closes, so
	// the next batch's append fails with a non-partial error.
	if err := store.Drop("default"); err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, line := range lines[2:] {
			io.WriteString(pw, line+"\n")
		}
		pw.Close()
	}()

	var sum ingestSummary
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &sum); err != nil {
			t.Fatalf("trailer line %q: %v", sc.Text(), err)
		}
	}
	if sc.Err() != nil {
		t.Fatalf("reading stream: %v", sc.Err())
	}
	if sum.Error == "" || sum.Done {
		t.Fatalf("summary = %+v, want in-band error and done=false", sum)
	}
	if sum.Batches != 2 || sum.Applied != 2 {
		t.Fatalf("summary = %+v, want batches=2 applied=2 (only batch 1 durable)", sum)
	}
}

// TestMetricsWALObserverAndMethodCheck covers the two metrics paths no
// other test reaches: the WAL sync observer feeding the fsync and
// group-commit summaries, and /metrics rejecting non-GET methods.
func TestMetricsWALObserverAndMethodCheck(t *testing.T) {
	store := graphdim.NewStore(graphdim.StoreOptions{})
	t.Cleanup(store.Close)
	if _, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	m := newServerMetrics()
	s := newServerCfg(store, serverConfig{defaultColl: "default", defaultK: 10, timeout: time.Second, metrics: m})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Feed the observer the way a durable store's group commit would.
	m.walObserver()(3*time.Millisecond, 4)

	resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"gserve_wal_fsync_duration_seconds_count 1",
		"gserve_wal_fsync_duration_seconds_sum 0.003",
		"gserve_wal_group_commit_records_count 1",
		"gserve_wal_group_commit_records_sum 4",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}
