package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/graphdim"
	"repro/internal/dataset"
)

// buildTestIndex builds a small index and round-trips it through the
// persistence layer, exercising the same load path main uses.
func buildTestIndex(t testing.TB) *graphdim.Index {
	t.Helper()
	db := dataset.Chemical(dataset.ChemConfig{N: 25, MinVertices: 8, MaxVertices: 12, Seed: 7})
	idx, err := graphdim.Build(db, graphdim.Options{Dimensions: 12, Tau: 0.2, MCSBudget: 1500})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	loaded, err := graphdim.ReadIndex(&buf)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	return loaded
}

// newTestServer stands up the full handler around a store whose default
// collection wraps the test index across the given number of shards.
func newTestServer(t *testing.T, shards int, timeout time.Duration) (*httptest.Server, *graphdim.Collection) {
	t.Helper()
	store := graphdim.NewStore(graphdim.StoreOptions{})
	t.Cleanup(store.Close)
	coll, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{
		Shards: shards,
		Build:  graphdim.Options{Dimensions: 12, Tau: 0.2, MCSBudget: 1500},
		// Mirror main: the default collection serves through the
		// query-result cache.
		Cache: graphdim.CacheOptions{MaxEntries: 256},
	})
	if err != nil {
		t.Fatalf("CreateFromIndex: %v", err)
	}
	ts := httptest.NewServer(newServer(store, "default", 10, timeout))
	t.Cleanup(ts.Close)
	return ts, coll
}

func queriesText(t *testing.T, coll *graphdim.Collection, n int) string {
	t.Helper()
	var buf bytes.Buffer
	gs := make([]*graphdim.Graph, n)
	for i := 0; i < n; i++ {
		g, ok := coll.Graph(i)
		if !ok {
			t.Fatalf("Graph(%d) missing", i)
		}
		gs[i] = g
	}
	if err := graphdim.WriteGraphs(&buf, gs); err != nil {
		t.Fatalf("WriteGraphs: %v", err)
	}
	return buf.String()
}

func TestTopKEndpoint(t *testing.T) {
	ts, coll := newTestServer(t, 1, 30*time.Second)

	body := queriesText(t, coll, 3)
	resp, err := http.Post(ts.URL+"/topk?k=5", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") == "" {
		t.Error("legacy /topk response missing the Deprecation header")
	}
	var out topkResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.K != 5 || out.Queries != 3 || len(out.Results) != 3 {
		t.Fatalf("unexpected response shape: k=%d queries=%d results=%d", out.K, out.Queries, len(out.Results))
	}
	for qi, batch := range out.Results {
		if len(batch) != 5 {
			t.Fatalf("query %d: got %d results, want 5", qi, len(batch))
		}
		// Each query is a database graph: its own id must rank at
		// distance 0.
		if batch[0].Distance != 0 {
			t.Fatalf("query %d: nearest distance = %v, want 0", qi, batch[0].Distance)
		}
	}
}

func TestTopKEndpointRejectsBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, 1, 30*time.Second)

	for _, tc := range []struct {
		name   string
		method string
		url    string
		body   string
		want   int
	}{
		{"wrong method", http.MethodGet, "/topk", "", http.StatusMethodNotAllowed},
		{"empty body", http.MethodPost, "/topk", "", http.StatusBadRequest},
		{"bad k", http.MethodPost, "/topk?k=zero", "t # 0\nv 0 1\n", http.StatusBadRequest},
		{"negative k", http.MethodPost, "/topk?k=-3", "t # 0\nv 0 1\n", http.StatusBadRequest},
		{"garbage body", http.MethodPost, "/topk", "not a graph\n", http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.url, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestErrorsAreJSON pins the contract that every error body — including
// router-level 404s and 405s — is a JSON object with an "error" key and
// the right Content-Type.
func TestErrorsAreJSON(t *testing.T) {
	ts, _ := newTestServer(t, 2, 30*time.Second)

	for _, tc := range []struct {
		name   string
		method string
		url    string
		body   string
		want   int
	}{
		{"unknown route", http.MethodGet, "/nope", "", http.StatusNotFound},
		{"root", http.MethodGet, "/", "", http.StatusNotFound},
		{"legacy search wrong method", http.MethodGet, "/search", "", http.StatusMethodNotAllowed},
		{"legacy add wrong method", http.MethodGet, "/add", "", http.StatusMethodNotAllowed},
		{"v1 collections wrong method", http.MethodDelete, "/v1/collections", "", http.StatusMethodNotAllowed},
		{"v1 create without name", http.MethodPost, "/v1/collections", "t # 0\nv 0 1\n", http.StatusBadRequest},
		{"v1 unknown collection", http.MethodPost, "/v1/collections/ghost/search", "t # 0\nv 0 1\n", http.StatusNotFound},
		{"v1 unknown action", http.MethodPost, "/v1/collections/default/explode", "", http.StatusNotFound},
		{"v1 stats wrong method", http.MethodPost, "/v1/collections/default/stats", "", http.StatusMethodNotAllowed},
		{"v1 bad engine", http.MethodPost, "/v1/collections/default/search?engine=warp", "t # 0\nv 0 1\n", http.StatusBadRequest},
		{"v1 garbage graphs", http.MethodPost, "/v1/collections/default/search", "not a graph", http.StatusBadRequest},
		{"v1 compact wrong method", http.MethodGet, "/v1/collections/default/compact", "", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.url, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q, want application/json", tc.name, ct)
		}
		var out map[string]string
		if err := json.Unmarshal(data, &out); err != nil || out["error"] == "" {
			t.Errorf("%s: body %q is not a JSON error object", tc.name, data)
		}
	}
}

func TestHealthzAndStats(t *testing.T) {
	ts, coll := newTestServer(t, 2, 30*time.Second)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["collections"].(float64) != 1 {
		t.Fatalf("healthz = %v", health)
	}

	// Serve a batch, then confirm the counters moved.
	body := queriesText(t, coll, 2)
	if _, err := http.Post(ts.URL+"/topk", "text/plain", strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		SearchRequests  float64                            `json:"search_requests"`
		QueriesAnswered float64                            `json:"queries_answered"`
		Collections     map[string]collectionStatsResponse `json:"collections"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.SearchRequests != 1 {
		t.Fatalf("search_requests = %v, want 1", stats.SearchRequests)
	}
	if stats.QueriesAnswered != 2 {
		t.Fatalf("queries_answered = %v, want 2", stats.QueriesAnswered)
	}
	def, ok := stats.Collections["default"]
	if !ok || len(def.Shards) != 2 || def.Live != coll.Size() {
		t.Fatalf("stats missing sharded default collection: %+v", stats.Collections)
	}
}

func TestSearchEndpointEngines(t *testing.T) {
	ts, coll := newTestServer(t, 1, 30*time.Second)

	body := queriesText(t, coll, 2)
	for _, engine := range []string{"mapped", "verified", "exact"} {
		resp, err := http.Post(ts.URL+"/search?k=4&engine="+engine+"&factor=2", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out searchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d", engine, resp.StatusCode)
		}
		if out.Engine != engine || out.K != 4 || len(out.Results) != 2 || len(out.Matched) != 2 {
			t.Fatalf("%s: bad response shape: %+v", engine, out)
		}
		for qi, batch := range out.Results {
			if len(batch) != 4 {
				t.Fatalf("%s query %d: got %d results, want 4", engine, qi, len(batch))
			}
			// Each query is a database graph: its own id ranks at 0.
			if batch[0].Distance != 0 {
				t.Fatalf("%s query %d: nearest distance = %v, want 0", engine, qi, batch[0].Distance)
			}
		}
	}

	// Bad knobs are rejected.
	for _, url := range []string{
		"/search?engine=warp",
		"/search?k=0",
		"/search?factor=-1",
		"/search?maxcand=-2",
	} {
		resp, err := http.Post(ts.URL+url, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", url, resp.StatusCode)
		}
	}
}

// TestShardedSearchMatchesUnsharded runs the same queries against a
// 1-shard and a 3-shard server over the same index and expects identical
// payloads — the HTTP layer's view of the equivalence guarantee.
func TestShardedSearchMatchesUnsharded(t *testing.T) {
	flat, coll := newTestServer(t, 1, 30*time.Second)
	sharded, _ := newTestServer(t, 3, 30*time.Second)

	body := queriesText(t, coll, 3)
	for _, q := range []string{"/search?k=7", "/search?k=7&engine=exact", "/v1/collections/default/search?k=5"} {
		read := func(base string) searchResponse {
			resp, err := http.Post(base+q, "text/plain", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d", q, resp.StatusCode)
			}
			var out searchResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			return out
		}
		a, b := read(flat.URL), read(sharded.URL)
		if len(a.Results) != len(b.Results) {
			t.Fatalf("%s: %d vs %d result lists", q, len(a.Results), len(b.Results))
		}
		for i := range a.Results {
			if len(a.Results[i]) != len(b.Results[i]) {
				t.Fatalf("%s query %d: %d vs %d results", q, i, len(a.Results[i]), len(b.Results[i]))
			}
			for j := range a.Results[i] {
				if a.Results[i][j] != b.Results[i][j] {
					t.Fatalf("%s query %d rank %d: %+v vs %+v", q, i, j, a.Results[i][j], b.Results[i][j])
				}
			}
		}
	}
}

func TestAddEndpoint(t *testing.T) {
	ts, coll := newTestServer(t, 2, 30*time.Second)

	before := coll.Size()
	newGraphs := dataset.Chemical(dataset.ChemConfig{N: 3, MinVertices: 8, MaxVertices: 12, Seed: 31})
	var buf bytes.Buffer
	if err := graphdim.WriteGraphs(&buf, newGraphs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/add", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var out addResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.IDs) != 3 || out.Size != before+3 || out.StaleRatio <= 0 {
		t.Fatalf("bad add response: %+v", out)
	}
	if len(out.StaleRatios) != 2 {
		t.Fatalf("stale_ratios = %v, want one entry per shard", out.StaleRatios)
	}

	// The added graphs are immediately searchable: self query hits its
	// new id at distance 0.
	var qbuf bytes.Buffer
	if err := graphdim.WriteGraphs(&qbuf, newGraphs[:1]); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/collections/default/search?k=100", "text/plain", &qbuf)
	if err != nil {
		t.Fatal(err)
	}
	var sout searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sout); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sout.Results) != 1 {
		t.Fatalf("bad search response after add: %+v", sout)
	}
	// The new id must rank at distance 0 (other graphs may tie with an
	// identical feature profile, so don't insist it ranks first).
	found := false
	for _, r := range sout.Results[0] {
		if r.ID == out.IDs[0] {
			found = true
			if r.Distance != 0 {
				t.Fatalf("self query after add: id %d at distance %v, want 0", r.ID, r.Distance)
			}
		}
	}
	if !found {
		t.Fatalf("added id %d missing from search results", out.IDs[0])
	}

	// Garbage and empty bodies are rejected.
	for _, body := range []string{"", "not a graph"} {
		resp, err := http.Post(ts.URL+"/add", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("add %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestV1CollectionLifecycle walks create → list → search → stats →
// compact → delete through the versioned API.
func TestV1CollectionLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, 1, 30*time.Second)

	db := dataset.Chemical(dataset.ChemConfig{N: 14, MinVertices: 8, MaxVertices: 12, Seed: 99})
	var buf bytes.Buffer
	if err := graphdim.WriteGraphs(&buf, db); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/collections?name=mols&shards=2&dimensions=10&tau=0.25&k=3", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var created collectionStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	if created.Name != "mols" || len(created.Shards) != 2 || created.Live != len(db) {
		t.Fatalf("create response: %+v", created)
	}

	// Duplicate names are rejected.
	var again bytes.Buffer
	if err := graphdim.WriteGraphs(&again, db); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/collections?name=mols", "text/plain", &again)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate create status = %d, want 400", resp.StatusCode)
	}

	// List shows both collections.
	resp, err = http.Get(ts.URL + "/v1/collections")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Collections []collectionSummary `json:"collections"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Collections) != 2 || list.Collections[0].Name != "default" || list.Collections[1].Name != "mols" {
		t.Fatalf("list = %+v", list.Collections)
	}

	// Search uses the collection's default k=3 when none is given.
	var qbuf bytes.Buffer
	if err := graphdim.WriteGraphs(&qbuf, db[:1]); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/collections/mols/search", "text/plain", &qbuf)
	if err != nil {
		t.Fatal(err)
	}
	var sout searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sout); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sout.Collection != "mols" || sout.K != 3 || len(sout.Results[0]) != 3 {
		t.Fatalf("search on created collection: %+v", sout)
	}

	// Stats via both routes.
	for _, path := range []string{"/v1/collections/mols", "/v1/collections/mols/stats"} {
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var st collectionStatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Name != "mols" || st.NextID != len(db) {
			t.Fatalf("%s: %+v", path, st)
		}
	}

	// Delete, then the collection is gone.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/collections/mols", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/collections/mols/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stats after delete = %d, want 404", resp.StatusCode)
	}
}

// TestV1CompactEndpoint makes the default collection stale over HTTP and
// compacts it through the API.
func TestV1CompactEndpoint(t *testing.T) {
	ts, coll := newTestServer(t, 2, 30*time.Second)

	// Triple the database so both shards cross the 0.3 threshold.
	extra := dataset.Chemical(dataset.ChemConfig{N: 2 * coll.Size(), MinVertices: 8, MaxVertices: 12, Seed: 321})
	var buf bytes.Buffer
	if err := graphdim.WriteGraphs(&buf, extra); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/collections/default/add", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status = %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/collections/default/compact", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Compacted   int       `json:"compacted"`
		StaleRatios []float64 `json:"stale_ratios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status = %d", resp.StatusCode)
	}
	if out.Compacted != 2 {
		t.Fatalf("compacted = %d, want 2", out.Compacted)
	}
	for i, r := range out.StaleRatios {
		if r != 0 {
			t.Fatalf("shard %d stale ratio %v after compact", i, r)
		}
	}

	// Compaction counters surface in stats.
	resp, err = http.Get(ts.URL + "/v1/collections/default/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st collectionStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i, sh := range st.Shards {
		if sh.Compactions != 1 {
			t.Fatalf("shard %d compactions = %d, want 1 (%+v)", i, sh.Compactions, st)
		}
	}
}

// TestV1GoldenSession is the scripted end-to-end walk of the /v1 API:
// create (with a cache) → search twice (miss then hit) → add
// (generation fence invalidates) → compact (swap invalidates again) →
// stats, asserting the cache hit/miss/invalidation counters and the
// generation vector at every step, plus deprecated-alias parity at the
// end.
func TestV1GoldenSession(t *testing.T) {
	ts, defColl := newTestServer(t, 1, 30*time.Second)

	db := dataset.Chemical(dataset.ChemConfig{N: 16, MinVertices: 8, MaxVertices: 12, Seed: 71})
	post := func(path string, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}
	graphsText := func(gs []*graphdim.Graph) string {
		t.Helper()
		var buf bytes.Buffer
		if err := graphdim.WriteGraphs(&buf, gs); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	stats := func() collectionStatsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/collections/golden/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st collectionStatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// 1. Create with a 32-entry cache across 2 shards.
	resp, data := post("/v1/collections?name=golden&shards=2&dimensions=10&tau=0.25&k=4&cache_entries=32&cache_bytes=1048576", graphsText(db))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	var created collectionStatsResponse
	if err := json.Unmarshal(data, &created); err != nil {
		t.Fatal(err)
	}
	if created.Cache == nil || created.Cache.Entries != 0 || created.Cache.Hits != 0 {
		t.Fatalf("created collection's cache not cold: %+v", created.Cache)
	}
	if len(created.Generations) != 2 || created.Generations[0] != 0 || created.Generations[1] != 0 {
		t.Fatalf("created generations = %v, want [0 0]", created.Generations)
	}

	// 2. The same search twice: miss, then hit, byte-identical results.
	q := graphsText(db[:1])
	resp1, body1 := post("/v1/collections/golden/search?k=5", q)
	resp2, body2 := post("/v1/collections/golden/search?k=5", q)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("search statuses %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	var s1, s2 searchResponse
	if err := json.Unmarshal(body1, &s1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &s2); err != nil {
		t.Fatal(err)
	}
	s1.ElapsedMS, s2.ElapsedMS = 0, 0
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("cache hit changed the payload:\n%s\n%s", body1, body2)
	}
	st := stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("after repeat search: %+v", st.Cache)
	}

	// 3. Add: one shard's generation moves and the cached entry dies; the
	// new graph is immediately visible through the same (cached) route.
	extra := dataset.Chemical(dataset.ChemConfig{N: 1, MinVertices: 8, MaxVertices: 12, Seed: 72})
	resp, data = post("/v1/collections/golden/add", graphsText(extra))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: status %d: %s", resp.StatusCode, data)
	}
	var added addResponse
	if err := json.Unmarshal(data, &added); err != nil {
		t.Fatal(err)
	}
	st = stats()
	if g := st.Generations[0] + st.Generations[1]; g != 1 {
		t.Fatalf("generations after add = %v, want exactly one bump", st.Generations)
	}
	_, body3 := post("/v1/collections/golden/search?k=50", graphsText(extra))
	var s3 searchResponse
	if err := json.Unmarshal(body3, &s3); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range s3.Results[0] {
		if r.ID == added.IDs[0] {
			found = true
		}
	}
	if !found {
		t.Fatalf("added id %d missing from post-add search: %s", added.IDs[0], body3)
	}
	// The k=5 entry from step 2 is fenced out: re-running it must miss.
	preInval := st.Cache.Invalidations
	post("/v1/collections/golden/search?k=5", q)
	st = stats()
	if st.Cache.Invalidations != preInval+1 {
		t.Fatalf("post-add repeat did not invalidate: %+v", st.Cache)
	}

	// 4. Compact: the swap moves the stale shard's generation again.
	preGens := st.Generations
	resp, data = post("/v1/collections/golden/compact?force=true", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d: %s", resp.StatusCode, data)
	}
	var compacted struct {
		Compacted int `json:"compacted"`
	}
	if err := json.Unmarshal(data, &compacted); err != nil {
		t.Fatal(err)
	}
	if compacted.Compacted != 1 {
		t.Fatalf("compacted = %d, want 1 (only one shard is stale)", compacted.Compacted)
	}
	st = stats()
	if reflect.DeepEqual(st.Generations, preGens) {
		t.Fatalf("compaction did not move a generation: %v", st.Generations)
	}

	// 5. Deprecated-alias parity: /topk and /search against the default
	// collection answer exactly like their /v1 successors, and carry the
	// Deprecation + successor Link headers.
	defQ := queriesText(t, defColl, 2)
	for _, alias := range []struct{ old, successor string }{
		{"/topk?k=5", "/v1/collections/default/search?k=5&engine=mapped"},
		{"/search?k=5&engine=verified&factor=2", "/v1/collections/default/search?k=5&engine=verified&factor=2"},
	} {
		respOld, bodyOld := post(alias.old, defQ)
		if respOld.Header.Get("Deprecation") != "true" || respOld.Header.Get("Link") == "" {
			t.Fatalf("%s: missing Deprecation/Link headers", alias.old)
		}
		_, bodyNew := post(alias.successor, defQ)
		var oldResp, newResp struct {
			K       int              `json:"k"`
			Results [][]searchResult `json:"results"`
		}
		if err := json.Unmarshal(bodyOld, &oldResp); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(bodyNew, &newResp); err != nil {
			t.Fatal(err)
		}
		if oldResp.K != newResp.K || !reflect.DeepEqual(oldResp.Results, newResp.Results) {
			t.Fatalf("alias %s diverges from %s:\n%s\n%s", alias.old, alias.successor, bodyOld, bodyNew)
		}
	}
}

// TestGracefulShutdown pins the serve loop: cancelling the signal context
// must drain and return promptly without dropping an in-flight request.
func TestGracefulShutdown(t *testing.T) {
	store := graphdim.NewStore(graphdim.StoreOptions{})
	defer store.Close()
	if _, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: newServer(store, "default", 5, 30*time.Second)}
	ctx, cancel := context.WithCancel(context.Background())

	served := make(chan error, 1)
	go func() { served <- serve(ctx, srv, ln, 5*time.Second) }()

	// The server must be answering before we shut it down.
	url := "http://" + ln.Addr().String()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v after shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after context cancellation")
	}

	// The listener is closed: new connections are refused.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestRequestTimeoutCancelsSearch pins the -timeout flag: a request
// exceeding it fails with 503 instead of hanging.
func TestRequestTimeoutCancelsSearch(t *testing.T) {
	// A 1ns budget cannot complete any search.
	ts, coll := newTestServer(t, 2, time.Nanosecond)

	body := queriesText(t, coll, 2)
	resp, err := http.Post(ts.URL+"/search?engine=exact", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusServiceUnavailable)
	}
}

// TestConcurrentRequests hammers one server (hence one shared store) from
// many goroutines across search, add, and compact — meaningful under
// -race: it covers the shard fan-out racing the compaction swap.
func TestConcurrentRequests(t *testing.T) {
	ts, coll := newTestServer(t, 2, 30*time.Second)

	body := queriesText(t, coll, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				url := ts.URL + "/topk"
				if w%2 == 0 {
					url = ts.URL + "/v1/collections/default/search?k=3"
				}
				resp, err := http.Post(url, "text/plain", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		extra := dataset.Chemical(dataset.ChemConfig{N: 6, MinVertices: 8, MaxVertices: 12, Seed: 55})
		var buf bytes.Buffer
		if err := graphdim.WriteGraphs(&buf, extra); err != nil {
			errs <- err
			return
		}
		payload := buf.String()
		for i := 0; i < 3; i++ {
			resp, err := http.Post(ts.URL+"/add", "text/plain", strings.NewReader(payload))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			resp, err = http.Post(ts.URL+"/v1/collections/default/compact?force=true", "text/plain", nil)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFailQueryClientDisconnect pins the disconnect half of failQuery: a
// client that hangs up mid-request gets no response written at all (there
// is nobody to read it), rather than a 503 blamed on the server.
func TestFailQueryClientDisconnect(t *testing.T) {
	store := graphdim.NewStore(graphdim.StoreOptions{})
	defer store.Close()
	coll, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(store, "default", 10, 30*time.Second)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the search starts
	req := httptest.NewRequest(http.MethodPost, "/v1/collections/default/search?k=3",
		strings.NewReader(queriesText(t, coll, 1))).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)

	if rec.Body.Len() != 0 {
		t.Fatalf("disconnected client got a %d-byte response: %s", rec.Body.Len(), rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "" {
		t.Fatalf("disconnected client got headers (Content-Type %q)", ct)
	}
	if got := s.errors.Load(); got != 1 {
		t.Fatalf("errors counter = %d, want 1 (the abandoned request still counts)", got)
	}
}

// TestFailQueryServerDeadline pins the other half: when the server's own
// -timeout expires with the client still connected, the answer is a JSON
// 503.
func TestFailQueryServerDeadline(t *testing.T) {
	store := graphdim.NewStore(graphdim.StoreOptions{})
	defer store.Close()
	coll, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(store, "default", 10, time.Nanosecond) // no search can finish

	req := httptest.NewRequest(http.MethodPost, "/v1/collections/default/search?engine=exact",
		strings.NewReader(queriesText(t, coll, 1)))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want %d", rec.Code, http.StatusServiceUnavailable)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("503 body is not the JSON error shape: %q (err %v)", rec.Body.String(), err)
	}
}

// TestPartialAddResponseShape pins the 207 body a partially applied add
// batch answers with.
func TestPartialAddResponseShape(t *testing.T) {
	store := graphdim.NewStore(graphdim.StoreOptions{})
	defer store.Close()
	s := newServer(store, "default", 10, 30*time.Second)
	rec := httptest.NewRecorder()
	pe := &graphdim.PartialAddError{Applied: []int{25, 27}, Total: 5, Err: fmt.Errorf("shard 1: boom")}
	s.writePartialAdd(rec, "default", pe)

	if rec.Code != http.StatusMultiStatus {
		t.Fatalf("status = %d, want %d", rec.Code, http.StatusMultiStatus)
	}
	var body struct {
		Error      string `json:"error"`
		Collection string `json:"collection"`
		AppliedIDs []int  `json:"applied_ids"`
		Applied    int    `json:"applied"`
		Total      int    `json:"total"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding 207 body %q: %v", rec.Body.String(), err)
	}
	if body.Error == "" || body.Collection != "default" || !reflect.DeepEqual(body.AppliedIDs, []int{25, 27}) ||
		body.Applied != 2 || body.Total != 5 {
		t.Fatalf("207 body = %+v", body)
	}
	if !strings.Contains(body.Error, "boom") {
		t.Fatalf("error %q does not carry the cause", body.Error)
	}
}

// TestDurableRestartServesAcknowledgedWrites is the end-to-end durability
// proof at the HTTP layer: adds acknowledged with 200 by a -data server,
// no checkpoint, the process dies (nothing is flushed beyond the WAL's
// own fsyncs), and a fresh server over the same directory serves the
// writes.
func TestDurableRestartServesAcknowledgedWrites(t *testing.T) {
	dir := t.TempDir()
	store, err := graphdim.OpenOrCreateStore(dir, graphdim.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, "default", 10, 30*time.Second))

	extra := dataset.Chemical(dataset.ChemConfig{N: 4, MinVertices: 8, MaxVertices: 12, Seed: 91})
	var buf bytes.Buffer
	if err := graphdim.WriteGraphs(&buf, extra); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/collections/default/add", "text/plain", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var added struct {
		IDs  []int `json:"ids"`
		Size int   `json:"size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&added); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(added.IDs) != len(extra) {
		t.Fatalf("add: status %d, ids %v", resp.StatusCode, added.IDs)
	}

	// Kill the server: no graceful shutdown, no checkpoint. Close only
	// drops file handles — the acknowledged adds exist solely as fsynced
	// WAL records.
	ts.Close()
	store.Close()

	store2, err := graphdim.OpenStore(dir, graphdim.StoreOptions{})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer store2.Close()
	ts2 := httptest.NewServer(newServer(store2, "default", 10, 30*time.Second))
	defer ts2.Close()

	// The recovered server must rank the added graph for its own query —
	// recovery rebuilt its vector, not just its bytes.
	var qbuf bytes.Buffer
	if err := graphdim.WriteGraphs(&qbuf, extra[:1]); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts2.URL+"/v1/collections/default/search?k=40", "text/plain", strings.NewReader(qbuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Results [][]struct {
			ID       int     `json:"id"`
			Distance float64 `json:"distance"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(sr.Results) != 1 {
		t.Fatalf("search after restart: status %d, %d result rows", resp.StatusCode, len(sr.Results))
	}
	found := false
	for _, r := range sr.Results[0] {
		if r.ID == added.IDs[0] {
			found = true
			if r.Distance != 0 {
				t.Fatalf("acknowledged add %d recovered with distance %v to itself", r.ID, r.Distance)
			}
		}
	}
	if !found {
		t.Fatalf("restarted server does not rank the acknowledged add %d: %+v", added.IDs[0], sr.Results[0])
	}

	// Stats surface the WAL and the replayed writes.
	resp, err = http.Get(ts2.URL + "/v1/collections/default/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		NextID int `json:"next_id"`
		WAL    *struct {
			LastSeq       uint64 `json:"last_seq"`
			CheckpointSeq uint64 `json:"checkpoint_seq"`
		} `json:"wal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.WAL == nil {
		t.Fatal("stats omit the wal block on a durable store")
	}
	if st.NextID != 25+len(extra) {
		t.Fatalf("next_id = %d after restart, want %d", st.NextID, 25+len(extra))
	}
}

// TestCheckpointEndpoint drives the manual checkpoint action and its
// error case on a volatile store.
func TestCheckpointEndpoint(t *testing.T) {
	// Volatile store: the action must refuse.
	tsVolatile, _ := newTestServer(t, 1, 30*time.Second)
	resp, err := http.Post(tsVolatile.URL+"/v1/collections/default/checkpoint", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint on volatile store: status %d, want %d", resp.StatusCode, http.StatusConflict)
	}

	// Durable store: the action persists and truncates.
	dir := t.TempDir()
	store, err := graphdim.OpenOrCreateStore(dir, graphdim.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coll, err := store.CreateFromIndex("default", buildTestIndex(t), graphdim.CollectionOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, "default", 10, 30*time.Second))
	defer ts.Close()

	extra := dataset.Chemical(dataset.ChemConfig{N: 2, MinVertices: 8, MaxVertices: 12, Seed: 92})
	if _, err := coll.Add(context.Background(), extra...); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/collections/default/checkpoint", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Collection  string `json:"collection"`
		Checkpoints int64  `json:"checkpoints"`
		WAL         *struct {
			LastSeq       uint64 `json:"last_seq"`
			CheckpointSeq uint64 `json:"checkpoint_seq"`
		} `json:"wal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body.Checkpoints != 1 || body.WAL == nil {
		t.Fatalf("checkpoint response: status %d, body %+v", resp.StatusCode, body)
	}
	if body.WAL.CheckpointSeq != body.WAL.LastSeq || body.WAL.LastSeq == 0 {
		t.Fatalf("checkpoint did not cover the log: %+v", body.WAL)
	}

	// /stats reports the checkpoint counters for -data stores.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["data_dir"] != dir || stats["checkpoints"] != float64(1) {
		t.Fatalf("/stats checkpoint counters: data_dir=%v checkpoints=%v", stats["data_dir"], stats["checkpoints"])
	}
}
