package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/graphdim"
	"repro/internal/dataset"
)

// buildTestIndex builds a small index and round-trips it through the
// persistence layer, exercising the same load path main uses.
func buildTestIndex(t *testing.T) *graphdim.Index {
	t.Helper()
	db := dataset.Chemical(dataset.ChemConfig{N: 25, MinVertices: 8, MaxVertices: 12, Seed: 7})
	idx, err := graphdim.Build(db, graphdim.Options{Dimensions: 12, Tau: 0.2, MCSBudget: 1500})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	loaded, err := graphdim.ReadIndex(&buf)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	return loaded
}

func queriesText(t *testing.T, idx *graphdim.Index, n int) string {
	t.Helper()
	var buf bytes.Buffer
	gs := make([]*graphdim.Graph, n)
	for i := 0; i < n; i++ {
		gs[i] = idx.Graph(i)
	}
	if err := graphdim.WriteGraphs(&buf, gs); err != nil {
		t.Fatalf("WriteGraphs: %v", err)
	}
	return buf.String()
}

func TestTopKEndpoint(t *testing.T) {
	idx := buildTestIndex(t)
	ts := httptest.NewServer(newServer(idx, 10))
	defer ts.Close()

	body := queriesText(t, idx, 3)
	resp, err := http.Post(ts.URL+"/topk?k=5", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out topkResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.K != 5 || out.Queries != 3 || len(out.Results) != 3 {
		t.Fatalf("unexpected response shape: k=%d queries=%d results=%d", out.K, out.Queries, len(out.Results))
	}
	for qi, batch := range out.Results {
		if len(batch) != 5 {
			t.Fatalf("query %d: got %d results, want 5", qi, len(batch))
		}
		// Each query is a database graph: its own id must rank at
		// distance 0.
		if batch[0].Distance != 0 {
			t.Fatalf("query %d: nearest distance = %v, want 0", qi, batch[0].Distance)
		}
	}
}

func TestTopKEndpointRejectsBadRequests(t *testing.T) {
	idx := buildTestIndex(t)
	ts := httptest.NewServer(newServer(idx, 10))
	defer ts.Close()

	for _, tc := range []struct {
		name   string
		method string
		url    string
		body   string
		want   int
	}{
		{"wrong method", http.MethodGet, "/topk", "", http.StatusMethodNotAllowed},
		{"empty body", http.MethodPost, "/topk", "", http.StatusBadRequest},
		{"bad k", http.MethodPost, "/topk?k=zero", "t # 0\nv 0 1\n", http.StatusBadRequest},
		{"negative k", http.MethodPost, "/topk?k=-3", "t # 0\nv 0 1\n", http.StatusBadRequest},
		{"garbage body", http.MethodPost, "/topk", "not a graph\n", http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.url, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestHealthzAndStats(t *testing.T) {
	idx := buildTestIndex(t)
	ts := httptest.NewServer(newServer(idx, 10))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz status = %v", health["status"])
	}

	// Serve a batch, then confirm the counters moved.
	body := queriesText(t, idx, 2)
	if _, err := http.Post(ts.URL+"/topk", "text/plain", strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := stats["topk_requests"].(float64); got != 1 {
		t.Fatalf("topk_requests = %v, want 1", got)
	}
	if got := stats["queries_answered"].(float64); got != 2 {
		t.Fatalf("queries_answered = %v, want 2", got)
	}
}

// TestConcurrentRequests hammers one server (hence one shared Index) from
// many goroutines — meaningful under -race.
func TestConcurrentRequests(t *testing.T) {
	idx := buildTestIndex(t)
	ts := httptest.NewServer(newServer(idx, 5))
	defer ts.Close()

	body := queriesText(t, idx, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := http.Post(ts.URL+"/topk", "text/plain", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
