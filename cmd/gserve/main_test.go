package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/graphdim"
	"repro/internal/dataset"
)

// buildTestIndex builds a small index and round-trips it through the
// persistence layer, exercising the same load path main uses.
func buildTestIndex(t *testing.T) *graphdim.Index {
	t.Helper()
	db := dataset.Chemical(dataset.ChemConfig{N: 25, MinVertices: 8, MaxVertices: 12, Seed: 7})
	idx, err := graphdim.Build(db, graphdim.Options{Dimensions: 12, Tau: 0.2, MCSBudget: 1500})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	loaded, err := graphdim.ReadIndex(&buf)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	return loaded
}

func queriesText(t *testing.T, idx *graphdim.Index, n int) string {
	t.Helper()
	var buf bytes.Buffer
	gs := make([]*graphdim.Graph, n)
	for i := 0; i < n; i++ {
		gs[i] = idx.Graph(i)
	}
	if err := graphdim.WriteGraphs(&buf, gs); err != nil {
		t.Fatalf("WriteGraphs: %v", err)
	}
	return buf.String()
}

func TestTopKEndpoint(t *testing.T) {
	idx := buildTestIndex(t)
	ts := httptest.NewServer(newServer(idx, 10, 30*time.Second))
	defer ts.Close()

	body := queriesText(t, idx, 3)
	resp, err := http.Post(ts.URL+"/topk?k=5", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out topkResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.K != 5 || out.Queries != 3 || len(out.Results) != 3 {
		t.Fatalf("unexpected response shape: k=%d queries=%d results=%d", out.K, out.Queries, len(out.Results))
	}
	for qi, batch := range out.Results {
		if len(batch) != 5 {
			t.Fatalf("query %d: got %d results, want 5", qi, len(batch))
		}
		// Each query is a database graph: its own id must rank at
		// distance 0.
		if batch[0].Distance != 0 {
			t.Fatalf("query %d: nearest distance = %v, want 0", qi, batch[0].Distance)
		}
	}
}

func TestTopKEndpointRejectsBadRequests(t *testing.T) {
	idx := buildTestIndex(t)
	ts := httptest.NewServer(newServer(idx, 10, 30*time.Second))
	defer ts.Close()

	for _, tc := range []struct {
		name   string
		method string
		url    string
		body   string
		want   int
	}{
		{"wrong method", http.MethodGet, "/topk", "", http.StatusMethodNotAllowed},
		{"empty body", http.MethodPost, "/topk", "", http.StatusBadRequest},
		{"bad k", http.MethodPost, "/topk?k=zero", "t # 0\nv 0 1\n", http.StatusBadRequest},
		{"negative k", http.MethodPost, "/topk?k=-3", "t # 0\nv 0 1\n", http.StatusBadRequest},
		{"garbage body", http.MethodPost, "/topk", "not a graph\n", http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.url, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestHealthzAndStats(t *testing.T) {
	idx := buildTestIndex(t)
	ts := httptest.NewServer(newServer(idx, 10, 30*time.Second))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz status = %v", health["status"])
	}

	// Serve a batch, then confirm the counters moved.
	body := queriesText(t, idx, 2)
	if _, err := http.Post(ts.URL+"/topk", "text/plain", strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := stats["search_requests"].(float64); got != 1 {
		t.Fatalf("search_requests = %v, want 1", got)
	}
	if _, ok := stats["stale_ratio"].(float64); !ok {
		t.Fatalf("stats missing stale_ratio: %v", stats)
	}
	if got := stats["queries_answered"].(float64); got != 2 {
		t.Fatalf("queries_answered = %v, want 2", got)
	}
}

func TestSearchEndpointEngines(t *testing.T) {
	idx := buildTestIndex(t)
	ts := httptest.NewServer(newServer(idx, 10, 30*time.Second))
	defer ts.Close()

	body := queriesText(t, idx, 2)
	for _, engine := range []string{"mapped", "verified", "exact"} {
		resp, err := http.Post(ts.URL+"/search?k=4&engine="+engine+"&factor=2", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out searchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d", engine, resp.StatusCode)
		}
		if out.Engine != engine || out.K != 4 || len(out.Results) != 2 || len(out.Matched) != 2 {
			t.Fatalf("%s: bad response shape: %+v", engine, out)
		}
		for qi, batch := range out.Results {
			if len(batch) != 4 {
				t.Fatalf("%s query %d: got %d results, want 4", engine, qi, len(batch))
			}
			// Each query is a database graph: its own id ranks at 0.
			if batch[0].Distance != 0 {
				t.Fatalf("%s query %d: nearest distance = %v, want 0", engine, qi, batch[0].Distance)
			}
		}
	}

	// Bad knobs are rejected.
	for _, url := range []string{
		"/search?engine=warp",
		"/search?k=0",
		"/search?factor=-1",
		"/search?maxcand=-2",
	} {
		resp, err := http.Post(ts.URL+url, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestAddEndpoint(t *testing.T) {
	idx := buildTestIndex(t)
	ts := httptest.NewServer(newServer(idx, 10, 30*time.Second))
	defer ts.Close()

	before := idx.Size()
	newGraphs := dataset.Chemical(dataset.ChemConfig{N: 3, MinVertices: 8, MaxVertices: 12, Seed: 31})
	var buf bytes.Buffer
	if err := graphdim.WriteGraphs(&buf, newGraphs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/add", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var out addResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.IDs) != 3 || out.Size != before+3 || out.StaleRatio <= 0 {
		t.Fatalf("bad add response: %+v", out)
	}

	// The added graphs are immediately searchable: self query hits its
	// new id at distance 0.
	var qbuf bytes.Buffer
	if err := graphdim.WriteGraphs(&qbuf, newGraphs[:1]); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/search?k=100", "text/plain", &qbuf)
	if err != nil {
		t.Fatal(err)
	}
	var sout searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sout); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sout.Results) != 1 {
		t.Fatalf("bad search response after add: %+v", sout)
	}
	// The new id must rank at distance 0 (other graphs may tie with an
	// identical feature profile, so don't insist it ranks first).
	found := false
	for _, r := range sout.Results[0] {
		if r.ID == out.IDs[0] {
			found = true
			if r.Distance != 0 {
				t.Fatalf("self query after add: id %d at distance %v, want 0", r.ID, r.Distance)
			}
		}
	}
	if !found {
		t.Fatalf("added id %d missing from search results", out.IDs[0])
	}

	// Garbage and empty bodies are rejected.
	for _, body := range []string{"", "not a graph"} {
		resp, err := http.Post(ts.URL+"/add", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("add %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestGracefulShutdown pins the serve loop: cancelling the signal context
// must drain and return promptly without dropping an in-flight request.
func TestGracefulShutdown(t *testing.T) {
	idx := buildTestIndex(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: newServer(idx, 5, 30*time.Second)}
	ctx, cancel := context.WithCancel(context.Background())

	served := make(chan error, 1)
	go func() { served <- serve(ctx, srv, ln, 5*time.Second) }()

	// The server must be answering before we shut it down.
	url := "http://" + ln.Addr().String()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v after shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after context cancellation")
	}

	// The listener is closed: new connections are refused.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestRequestTimeoutCancelsSearch pins the -timeout flag: a request
// exceeding it fails with 503 instead of hanging.
func TestRequestTimeoutCancelsSearch(t *testing.T) {
	idx := buildTestIndex(t)
	// A 1ns budget cannot complete any search.
	ts := httptest.NewServer(newServer(idx, 10, time.Nanosecond))
	defer ts.Close()

	body := queriesText(t, idx, 2)
	resp, err := http.Post(ts.URL+"/search?engine=exact", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusServiceUnavailable)
	}
}

// TestConcurrentRequests hammers one server (hence one shared Index) from
// many goroutines — meaningful under -race.
func TestConcurrentRequests(t *testing.T) {
	idx := buildTestIndex(t)
	ts := httptest.NewServer(newServer(idx, 5, 30*time.Second))
	defer ts.Close()

	body := queriesText(t, idx, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := http.Post(ts.URL+"/topk", "text/plain", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
