// Command gsearch answers top-k graph similarity queries against an index
// built by the dspm command.
//
// Usage:
//
//	gsearch -index index.gdx -queries q.graphs [-k 10] [-engine verified] [-factor 3]
//
// The engine flag picks the query engine: mapped (the paper's vector-space
// scan, the default), verified (retrieve factor·k candidates, re-rank by
// exact MCS), or exact (full MCS search; orders of magnitude slower, for
// ground-truth comparison). Ctrl-C cancels an in-flight query promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/graphdim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gsearch: ")
	var (
		index   = flag.String("index", "index.gdx", "index file built by dspm (v2 binary or legacy v1 JSON)")
		queries = flag.String("queries", "", "query graphs file (text format)")
		k       = flag.Int("k", 10, "number of results per query")
		engine  = flag.String("engine", "mapped", "query engine: mapped, verified or exact")
		factor  = flag.Int("factor", 0, "verified engine: candidates = factor*k (0 = default 3)")
		maxcand = flag.Int("maxcand", 0, "verified engine: hard cap on verified candidates (0 = uncapped)")
		exact   = flag.Bool("exact", false, "deprecated: use -engine exact")
	)
	flag.Parse()
	if *queries == "" {
		flag.Usage()
		os.Exit(2)
	}
	eng, err := graphdim.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	if *exact {
		eng = graphdim.EngineExact
	}

	f, err := os.Open(*index)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := graphdim.ReadIndex(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	qf, err := os.Open(*queries)
	if err != nil {
		log.Fatal(err)
	}
	qs, err := graphdim.ReadGraphs(qf)
	qf.Close()
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := graphdim.SearchOptions{K: *k, Engine: eng, VerifyFactor: *factor, MaxCandidates: *maxcand}
	for qi, q := range qs {
		res, err := idx.Search(ctx, q, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d (%d vertices, %d edges): %d/%d dimensions matched, %s engine scored %d candidates in %v:\n",
			qi, q.N(), q.M(), res.Matched.Count(), res.Matched.Len(),
			res.Engine, res.Candidates, res.Elapsed.Round(time.Microsecond))
		for rank, r := range res.Results {
			fmt.Printf("  %2d. graph %-6d distance %.4f\n", rank+1, r.ID, r.Distance)
		}
	}
}
