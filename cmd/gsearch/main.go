// Command gsearch answers top-k graph similarity queries against an index
// built by the dspm command, or against a collection of a store directory
// saved by the graphdim.Store API.
//
// Usage:
//
//	gsearch -index index.gdx -queries q.graphs [-k 10] [-engine verified] [-factor 3]
//	gsearch -index index.gdx -queries q.graphs -shards 4
//	gsearch -store storedir -collection default -queries q.graphs
//
// The engine flag picks the query engine: mapped (the paper's vector-space
// scan, the default), verified (retrieve factor·k candidates, re-rank by
// exact MCS), or exact (full MCS search; orders of magnitude slower, for
// ground-truth comparison). With -shards > 1 the flat index is split into
// a sharded in-memory collection and queries fan out across the shards —
// results are identical to the unsharded index, making the flag a handy
// equivalence check for the Store path. Ctrl-C cancels an in-flight query
// promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/graphdim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gsearch: ")
	var (
		index    = flag.String("index", "index.gdx", "index file built by dspm (v2 binary or legacy v1 JSON)")
		storeDir = flag.String("store", "", "store directory saved by graphdim.Store (overrides -index)")
		collName = flag.String("collection", "default", "collection to query inside -store")
		shards   = flag.Int("shards", 1, "with -index: split the index into this many shards and fan queries out")
		queries  = flag.String("queries", "", "query graphs file (text format)")
		k        = flag.Int("k", 10, "number of results per query")
		engine   = flag.String("engine", "mapped", "query engine: mapped, verified or exact")
		factor   = flag.Int("factor", 0, "verified engine: candidates = factor*k (0 = default 3)")
		maxcand  = flag.Int("maxcand", 0, "verified engine: hard cap on verified candidates (0 = uncapped)")
		exact    = flag.Bool("exact", false, "deprecated: use -engine exact")
	)
	flag.Parse()
	if *queries == "" {
		flag.Usage()
		os.Exit(2)
	}
	eng, err := graphdim.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	if *exact {
		eng = graphdim.EngineExact
	}

	// search abstracts over the three backends: a flat index, a sharded
	// in-memory collection wrapped around it, or a persisted store.
	var search func(ctx context.Context, q *graphdim.Graph, opt graphdim.SearchOptions) (*graphdim.SearchResult, error)
	switch {
	case *storeDir != "":
		// A query CLI must never become a second owner of the store's
		// write-ahead log — the directory may belong to a live gserve.
		// Disabled opens read the snapshot without touching the log, and
		// refuse (with an explanation) if un-replayed records exist; let
		// the serving process recover those. Racing a live checkpoint can
		// fail transiently (superseded shard files swept mid-open) —
		// loud, clean, and fixed by retrying.
		store, err := graphdim.OpenStore(*storeDir, graphdim.StoreOptions{WAL: graphdim.WALOptions{Disabled: true}})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		coll, ok := store.Collection(*collName)
		if !ok {
			log.Fatalf("store %s has no collection %q (have %v)", *storeDir, *collName, store.Collections())
		}
		log.Printf("opened %s/%s: %d graphs in %d shards", *storeDir, *collName, coll.Size(), coll.Shards())
		search = coll.Search
	default:
		f, err := os.Open(*index)
		if err != nil {
			log.Fatal(err)
		}
		idx, err := graphdim.ReadIndex(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if *shards > 1 {
			store := graphdim.NewStore(graphdim.StoreOptions{})
			defer store.Close()
			coll, err := store.CreateFromIndex(*collName, idx, graphdim.CollectionOptions{Shards: *shards})
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("split %s into %d shards", *index, coll.Shards())
			search = coll.Search
		} else {
			search = idx.Search
		}
	}

	qf, err := os.Open(*queries)
	if err != nil {
		log.Fatal(err)
	}
	qs, err := graphdim.ReadGraphs(qf)
	qf.Close()
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The CLI specifies every knob explicitly (flags have defaults), so a
	// store collection's default overlay must not reinterpret the zero
	// values — -engine mapped means mapped.
	opt := graphdim.SearchOptions{K: *k, Engine: eng, VerifyFactor: *factor, MaxCandidates: *maxcand, NoDefaults: true}
	for qi, q := range qs {
		res, err := search(ctx, q, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d (%d vertices, %d edges): %d/%d dimensions matched, %s engine scored %d candidates in %v:\n",
			qi, q.N(), q.M(), res.Matched.Count(), res.Matched.Len(),
			res.Engine, res.Candidates, res.Elapsed.Round(time.Microsecond))
		for rank, r := range res.Results {
			fmt.Printf("  %2d. graph %-6d distance %.4f\n", rank+1, r.ID, r.Distance)
		}
	}
}
