// Command gsearch answers top-k graph similarity queries against an index
// built by the dspm command.
//
// Usage:
//
//	gsearch -index index.json -queries q.graphs [-k 10] [-exact]
//
// With -exact the MCS-based exact engine is used instead of the mapped
// space (orders of magnitude slower; for ground-truth comparison).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/graphdim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gsearch: ")
	var (
		index   = flag.String("index", "index.json", "index file built by dspm")
		queries = flag.String("queries", "", "query graphs file (text format)")
		k       = flag.Int("k", 10, "number of results per query")
		exact   = flag.Bool("exact", false, "use the exact MCS engine")
	)
	flag.Parse()
	if *queries == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*index)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := graphdim.ReadIndex(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	qf, err := os.Open(*queries)
	if err != nil {
		log.Fatal(err)
	}
	qs, err := graphdim.ReadGraphs(qf)
	qf.Close()
	if err != nil {
		log.Fatal(err)
	}

	for qi, q := range qs {
		start := time.Now()
		var results []graphdim.Result
		if *exact {
			results, err = idx.TopKExact(q, *k)
		} else {
			results, err = idx.TopK(q, *k)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d (%d vertices, %d edges) answered in %v:\n",
			qi, q.N(), q.M(), time.Since(start).Round(time.Microsecond))
		for rank, r := range results {
			fmt.Printf("  %2d. graph %-6d distance %.4f\n", rank+1, r.ID, r.Distance)
		}
	}
}
