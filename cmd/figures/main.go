// Command figures regenerates the paper's evaluation figures at a
// configurable scale and prints the series as text tables.
//
// Usage:
//
//	figures -fig all            # every figure at the default scale
//	figures -fig 4 -db 300      # Fig. 4 with a 300-graph database
//
// The defaults run the whole suite in minutes on a laptop; the paper-scale
// parameters (1k–10k graphs, 1,000 queries) are reachable through flags.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 1,2,4,5,6,7,8,9 or all")
		db      = flag.Int("db", 0, "database size (0 = harness default)")
		queries = flag.Int("queries", 0, "query count (0 = harness default)")
		seed    = flag.Int64("seed", 1, "master seed")
		budget  = flag.Int64("mcs-budget", 5000, "MCS search budget per pair")
	)
	flag.Parse()

	base := experiments.Config{
		DBSize:     *db,
		QueryCount: *queries,
		Seed:       *seed,
		MCSBudget:  *budget,
	}
	want := func(name string) bool {
		return *fig == "all" || *fig == name
	}

	var chem *experiments.Dataset
	needChem := want("1") || want("2") || want("4") || want("7") || want("8")
	if needChem {
		log.Printf("building chemical dataset...")
		start := time.Now()
		var err error
		chem, err = experiments.BuildChemical(base)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("chemical dataset ready in %v: %d graphs, %d queries, %d candidate features",
			time.Since(start).Round(time.Millisecond), len(chem.DB), len(chem.Queries), chem.Index.P)
	}

	w := os.Stdout
	if want("1") {
		runFig1(w, chem)
	}
	if want("2") {
		runFig2(w, chem, *seed)
	}
	if want("4") {
		runFig4(w, chem, *seed)
	}
	if want("5") || want("6") {
		if want("5") {
			runFig5(w, base, *seed)
		}
		if want("6") {
			runFig6(w, base, *seed)
		}
	}
	if want("7") {
		runFig7(w, chem)
	}
	if want("8") {
		runFig8(w, chem, *seed)
	}
	if want("9") {
		runFig9(w, base, *seed)
	}
}

func defaultP(m int) int {
	p := m / 4
	if p < 10 {
		p = 10
	}
	if p > m {
		p = m
	}
	return p
}

func defaultKs(n int) []int {
	// The paper's k ∈ {20..100} on 1k graphs = 2%..10% of the database.
	ks := make([]int, 0, 5)
	for pct := 2; pct <= 10; pct += 2 {
		k := n * pct / 100
		if k < 1 {
			k = 1
		}
		ks = append(ks, k)
	}
	return ks
}

func runFig1(w *os.File, ds *experiments.Dataset) {
	fmt.Fprintln(w, "== Fig 1: dissimilarity/distance distributions ==")
	res, err := experiments.Fig1(ds, defaultP(ds.Index.P), 20)
	if err != nil {
		log.Fatal(err)
	}
	printHist := func(name string, h experiments.Histogram) {
		fmt.Fprintf(w, "%-12s", name)
		for _, b := range h.Bins {
			fmt.Fprintf(w, " %5.3f", b)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(a) within database:")
	printHist("delta", res.DeltaDB)
	printHist("DSPM", res.DSPMDB)
	printHist("Original", res.OriginalDB)
	fmt.Fprintf(w, "EMD(DSPM, delta)=%.4f  EMD(Original, delta)=%.4f\n",
		res.DSPMDB.EMD(res.DeltaDB), res.OriginalDB.EMD(res.DeltaDB))
	fmt.Fprintln(w, "(b) queries vs database:")
	printHist("delta", res.DeltaQ)
	printHist("DSPM", res.DSPMQ)
	printHist("Original", res.OriginalQ)
	fmt.Fprintf(w, "EMD(DSPM, delta)=%.4f  EMD(Original, delta)=%.4f\n\n",
		res.DSPMQ.EMD(res.DeltaQ), res.OriginalQ.EMD(res.DeltaQ))
}

func runFig2(w *os.File, ds *experiments.Dataset, seed int64) {
	fmt.Fprintln(w, "== Fig 2: total feature correlation, DSPM vs Sample ==")
	m := ds.Index.P
	ps := []int{m / 5, 2 * m / 5, 3 * m / 5}
	pts, err := experiments.Fig2(ds, ps, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "%8s %12s %12s\n", "p", "DSPM", "Sample")
	for _, pt := range pts {
		fmt.Fprintf(w, "%8d %12.1f %12.1f\n", pt.P, pt.DSPMScore, pt.SampleScore)
	}
	fmt.Fprintln(w)
}

func runFig4(w *os.File, ds *experiments.Dataset, seed int64) {
	ks := defaultKs(len(ds.DB))
	series := experiments.FigQuality(ds, experiments.StandardAlgorithms(seed), defaultP(ds.Index.P), ks, true)
	experiments.WriteSeries(w, "Fig 4: real dataset, relative to fingerprint benchmark", series, ks)
	fmt.Fprintln(w)
}

func runFig5(w *os.File, base experiments.Config, seed int64) {
	log.Printf("building synthetic dataset...")
	ds, err := experiments.BuildSynthetic(base)
	if err != nil {
		log.Fatal(err)
	}
	ks := defaultKs(len(ds.DB))
	series := experiments.FigQuality(ds, experiments.StandardAlgorithms(seed), defaultP(ds.Index.P), ks, false)
	experiments.RelativeToBest(series, ks)
	experiments.WriteSeries(w, "Fig 5: synthetic dataset, relative to best", series, ks)
	fmt.Fprintln(w)
}

func runFig6(w *os.File, base experiments.Config, seed int64) {
	fmt.Fprintln(w, "== Fig 6: synthetic sweeps (precision@k, indexing time) ==")
	k := defaultKs(baseOr(base.DBSize, 150))[2]
	fmt.Fprintln(w, "(a,c) vary average edges:")
	fmt.Fprintf(w, "%8s", "edges")
	names := []string{"DSPM", "Original", "Sample", "MICI", "MCFS", "UDFS", "NDFS"}
	for _, n := range names {
		fmt.Fprintf(w, " %9s", n)
	}
	fmt.Fprintln(w)
	for _, edges := range []int{12, 16, 20} {
		cfg := base
		cfg.Synth.AvgEdges = edges
		writeSweepRow(w, cfg, fmt.Sprintf("%8d", edges), names, k, seed)
	}
	fmt.Fprintln(w, "(b,d) vary density:")
	for _, den := range []float64{0.1, 0.2, 0.3} {
		cfg := base
		cfg.Synth.Density = den
		writeSweepRow(w, cfg, fmt.Sprintf("%8.2f", den), names, k, seed)
	}
	fmt.Fprintln(w)
}

func baseOr(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func writeSweepRow(w *os.File, cfg experiments.Config, label string, names []string, k int, seed int64) {
	ds, err := experiments.BuildSynthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	algos := experiments.StandardAlgorithms(seed)
	kept := algos[:0]
	for _, a := range algos {
		for _, n := range names {
			if a.Name == n {
				kept = append(kept, a)
			}
		}
	}
	series := experiments.FigQuality(ds, kept, defaultP(ds.Index.P), []int{k}, false)
	experiments.RelativeToBest(series, []int{k})
	fmt.Fprint(w, label)
	byName := map[string]experiments.AlgoSeries{}
	for _, s := range series {
		byName[s.Name] = s
	}
	for _, n := range names {
		s, ok := byName[n]
		if !ok || s.Err != nil {
			fmt.Fprintf(w, " %9s", "-")
			continue
		}
		fmt.Fprintf(w, " %4.2f/%-4s", s.ByK[k].Precision, shortDur(s.IndexingTime))
	}
	fmt.Fprintln(w)
}

func shortDur(d time.Duration) string {
	s := d.Round(time.Millisecond).String()
	return strings.TrimSuffix(s, "0ms") + "ms"
}

func runFig7(w *os.File, ds *experiments.Dataset) {
	fmt.Fprintln(w, "== Fig 7: query time by |V(q)| ==")
	res, err := experiments.Fig7(ds, defaultP(ds.Index.P), []int{10, 12, 14, 16, 18, 21}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "%8s %12s %12s %12s\n", "|V(q)|", "DSPM", "Original", "Exact")
	for b := range res.Buckets {
		fmt.Fprintf(w, "%8s %12v %12v %12v\n", res.Buckets[b],
			res.DSPM[b].Round(time.Microsecond),
			res.Original[b].Round(time.Microsecond),
			res.Exact[b].Round(time.Millisecond))
	}
	fmt.Fprintln(w)
}

func runFig8(w *os.File, ds *experiments.Dataset, seed int64) {
	fmt.Fprintln(w, "== Fig 8: DSPMap approximation quality vs partition size ==")
	n := len(ds.DB)
	bs := []int{n / 8, n / 6, n / 4, n / 3, n / 2}
	k := defaultKs(n)[2]
	pts, err := experiments.Fig8(ds, defaultP(ds.Index.P), k, bs, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "%8s %14s %14s %14s %14s\n", "b", "DSPMap prec", "DSPM prec", "DSPMap index", "DSPM index")
	for _, pt := range pts {
		fmt.Fprintf(w, "%8d %14.3f %14.3f %14v %14v\n", pt.B, pt.DSPMapPrec, pt.DSPMPrec,
			pt.DSPMapIndexing.Round(time.Millisecond), pt.DSPMIndexing.Round(time.Millisecond))
	}
	fmt.Fprintln(w)
}

func runFig9(w *os.File, base experiments.Config, seed int64) {
	fmt.Fprintln(w, "== Fig 9: scalability with |DG| ==")
	n0 := baseOr(base.DBSize, 150)
	sizes := []int{n0, 2 * n0, 3 * n0}
	algos := experiments.StandardAlgorithms(seed)
	// SFS is excluded (cannot finish even at 2k in the paper); spectral
	// baselines run while memory allows, as in the paper.
	kept := algos[:0]
	for _, a := range algos {
		if a.Name != "SFS" {
			kept = append(kept, a)
		}
	}
	k := defaultKs(n0)[2]
	pts, err := experiments.Fig9(sizes, base, kept, defaultP(400), k, seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range pts {
		fmt.Fprintf(w, "|DG|=%d  DSPMap query=%v  exact query=%v\n",
			pt.N, pt.DSPMapQuery.Round(time.Microsecond), pt.ExactQuery.Round(time.Millisecond))
		for _, name := range experiments.SortedAlgoNames(pt.Precision) {
			fmt.Fprintf(w, "  %-10s prec=%.3f  indexing=%v\n",
				name, pt.Precision[name], pt.IndexingByAlgo[name].Round(time.Millisecond))
		}
	}
	fmt.Fprintln(w)
}
