// Command gq runs a composable query pipeline — the same JSON documents
// POST /v1/collections/{name}/query accepts — against an index file
// built by dspm or a store directory saved by the graphdim.Store API,
// offline, without a server.
//
// Usage:
//
//	gq -pipeline p.json -index index.gdx
//	gq -pipeline p.json -index index.gdx -shards 4
//	gq -pipeline - -store storedir -collection default < p.json
//
// A pipeline is {"stages":[...]} with filter, search, topk, limit,
// count and group_by stages (see internal/pipeline); a search stage
// carries its query graph inline as {"labels":[...],"edges":[[u,v,l],
// ...]}. The result is printed as JSON on stdout: rows, count or
// groups, plus execution stats (pushdown split, per-stage timings).
// With -shards > 1 the flat index fans the pipeline out across an
// in-memory sharded collection — per-shard partial aggregates merge to
// the same answer, making the flag an equivalence check. Ctrl-C
// cancels an in-flight pipeline promptly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/graphdim"
	"repro/internal/pipeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gq: ")
	var (
		pipePath = flag.String("pipeline", "", `pipeline JSON file ("-" = stdin)`)
		index    = flag.String("index", "index.gdx", "index file built by dspm (overridden by -store)")
		storeDir = flag.String("store", "", "store directory saved by graphdim.Store (overrides -index)")
		collName = flag.String("collection", "default", "collection to query inside -store")
		shards   = flag.Int("shards", 1, "with -index: split the index into this many shards and fan the pipeline out")
	)
	flag.Parse()
	if *pipePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var body []byte
	var err error
	if *pipePath == "-" {
		body, err = io.ReadAll(os.Stdin)
	} else {
		body, err = os.ReadFile(*pipePath)
	}
	if err != nil {
		log.Fatal(err)
	}
	p, err := pipeline.Parse(body)
	if err != nil {
		log.Fatal(err)
	}

	// Both backends run through a Collection — pipelines are a
	// collection-level API (shard fan-out + partial-aggregate merge);
	// a flat index simply becomes a 1-shard in-memory collection.
	var coll *graphdim.Collection
	if *storeDir != "" {
		// Never a second owner of a live gserve's WAL: Disabled opens
		// read the snapshot without touching the log (see gsearch).
		store, err := graphdim.OpenStore(*storeDir, graphdim.StoreOptions{WAL: graphdim.WALOptions{Disabled: true}})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		var ok bool
		coll, ok = store.Collection(*collName)
		if !ok {
			log.Fatalf("store %s has no collection %q (have %v)", *storeDir, *collName, store.Collections())
		}
		log.Printf("opened %s/%s: %d graphs in %d shards", *storeDir, *collName, coll.Size(), coll.Shards())
	} else {
		f, err := os.Open(*index)
		if err != nil {
			log.Fatal(err)
		}
		idx, err := graphdim.ReadIndex(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		store := graphdim.NewStore(graphdim.StoreOptions{})
		defer store.Close()
		coll, err = store.CreateFromIndex(*collName, idx, graphdim.CollectionOptions{Shards: *shards})
		if err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := coll.Query(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Fatal(err)
	}
}
