// Command dspm builds a graph-dimension index from a graph database file
// and writes it to disk for use by gsearch.
//
// Usage:
//
//	dspm -in db.graphs -out index.json [-p 200] [-tau 0.05] [-algo dspmap] [-b 50]
//
// The input uses the standard text format ("t #", "v id label",
// "e u v label"). Generate a demo database with -gen N.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/graphdim"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dspm: ")
	var (
		in      = flag.String("in", "", "input graph database file (text format)")
		out     = flag.String("out", "index.json", "output index file")
		gen     = flag.Int("gen", 0, "instead of -in, generate N chemical-like graphs")
		genSeed = flag.Int64("seed", 1, "generator / DSPMap seed")
		p       = flag.Int("p", 200, "number of dimensions to select")
		tau     = flag.Float64("tau", 0.05, "minimum support ratio for mining")
		algo    = flag.String("algo", "dspm", "dimension algorithm: dspm or dspmap")
		b       = flag.Int("b", 0, "DSPMap partition size (0 = auto)")
		budget  = flag.Int64("mcs-budget", 20000, "MCS search budget in tree nodes")
		maxEdge = flag.Int("max-pattern-edges", 6, "cap on mined subgraph size")
	)
	flag.Parse()

	var db []*graphdim.Graph
	switch {
	case *gen > 0:
		db = dataset.Chemical(dataset.ChemConfig{N: *gen, Seed: *genSeed})
		log.Printf("generated %d chemical-like graphs", len(db))
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		db, err = graphdim.ReadGraphs(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("read %d graphs from %s", len(db), *in)
	default:
		flag.Usage()
		os.Exit(2)
	}

	opt := graphdim.Options{
		Dimensions:      *p,
		Tau:             *tau,
		MaxPatternEdges: *maxEdge,
		MCSBudget:       *budget,
		PartitionSize:   *b,
		Seed:            *genSeed,
	}
	switch *algo {
	case "dspm":
		opt.Algorithm = graphdim.DSPM
	case "dspmap":
		opt.Algorithm = graphdim.DSPMap
	default:
		log.Fatalf("unknown -algo %q (want dspm or dspmap)", *algo)
	}

	idx, err := graphdim.Build(db, opt)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("selected %d dimensions", len(idx.Dimensions()))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index written to %s\n", *out)
}
