// Command dspm builds a graph-dimension index from a graph database file
// and writes it to disk for use by gsearch and gserve.
//
// Usage:
//
//	dspm -in db.graphs -out index.gdx [-p 200] [-tau 0.05] [-algo dspmap] [-b 50]
//
// The input uses the standard text format ("t #", "v id label",
// "e u v label"). Generate a demo database with -gen N. The index is
// written in the compact v2 binary format; -progress reports the build
// stages (mining, MCS matrix, DSPM, vectors), and Ctrl-C cancels a long
// build promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/graphdim"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dspm: ")
	var (
		in       = flag.String("in", "", "input graph database file (text format)")
		out      = flag.String("out", "index.gdx", "output index file")
		gen      = flag.Int("gen", 0, "instead of -in, generate N chemical-like graphs")
		genSeed  = flag.Int64("seed", 1, "generator / DSPMap seed")
		p        = flag.Int("p", 200, "number of dimensions to select")
		tau      = flag.Float64("tau", 0.05, "minimum support ratio for mining")
		algo     = flag.String("algo", "dspm", "dimension algorithm: dspm or dspmap")
		b        = flag.Int("b", 0, "DSPMap partition size (0 = auto)")
		budget   = flag.Int64("mcs-budget", 20000, "MCS search budget in tree nodes")
		maxEdge  = flag.Int("max-pattern-edges", 6, "cap on mined subgraph size")
		progress = flag.Bool("progress", true, "log build-stage progress")
	)
	flag.Parse()

	var db []*graphdim.Graph
	switch {
	case *gen > 0:
		db = dataset.Chemical(dataset.ChemConfig{N: *gen, Seed: *genSeed})
		log.Printf("generated %d chemical-like graphs", len(db))
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		db, err = graphdim.ReadGraphs(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("read %d graphs from %s", len(db), *in)
	default:
		flag.Usage()
		os.Exit(2)
	}

	opt := graphdim.Options{
		Dimensions:      *p,
		Tau:             *tau,
		MaxPatternEdges: *maxEdge,
		MCSBudget:       *budget,
		PartitionSize:   *b,
		Seed:            *genSeed,
	}
	switch *algo {
	case "dspm":
		opt.Algorithm = graphdim.DSPM
	case "dspmap":
		opt.Algorithm = graphdim.DSPMap
	default:
		log.Fatalf("unknown -algo %q (want dspm or dspmap)", *algo)
	}
	if *progress {
		// Log stage entry and a coarse heartbeat: every 10% for the
		// row/iteration-granular stages, start/end for the others.
		lastPct := make(map[graphdim.BuildStage]int)
		opt.Progress = func(stage graphdim.BuildStage, done, total int) {
			switch {
			case done == 0:
				if total > 0 {
					log.Printf("stage %v: started (%d units)", stage, total)
				} else {
					log.Printf("stage %v: started", stage)
				}
			case done == total:
				log.Printf("stage %v: done (%d/%d)", stage, done, total)
			default:
				if pct := done * 10 / total; pct > lastPct[stage] {
					lastPct[stage] = pct
					log.Printf("stage %v: %d/%d", stage, done, total)
				}
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	idx, err := graphdim.BuildContext(ctx, db, opt)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("selected %d dimensions", len(idx.Dimensions()))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	n, err := idx.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index written to %s (%d bytes)\n", *out, n)
}
