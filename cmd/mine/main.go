// Command mine runs gSpan frequent subgraph mining over a graph database
// and prints the patterns with their supports — the candidate-generation
// step of the indexing pipeline, exposed standalone.
//
// Usage:
//
//	mine -in db.graphs -tau 0.05 -max-edges 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/graph"
	"repro/internal/gspan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mine: ")
	var (
		in       = flag.String("in", "", "input graph database (text format; - for stdin)")
		tau      = flag.Float64("tau", 0.05, "minimum support ratio")
		maxEdges = flag.Int("max-edges", 7, "cap on pattern size in edges")
		maxFeats = flag.Int("max-features", 0, "stop after this many patterns (0 = all)")
		quiet    = flag.Bool("quiet", false, "print only the summary line")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	db, err := graph.ReadAll(r)
	if err != nil {
		log.Fatal(err)
	}
	feats, err := gspan.Mine(db, gspan.Options{
		MinSupport:  gspan.MinSupportRatio(*tau, len(db)),
		MaxEdges:    *maxEdges,
		MaxFeatures: *maxFeats,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		for i, f := range feats {
			fmt.Printf("%% pattern %d: support %d/%d (%.1f%%)\n", i, len(f.Support), len(db), 100*f.Freq(len(db)))
			fmt.Print(f.Graph.String())
		}
	}
	fmt.Fprintf(os.Stderr, "mined %d frequent subgraphs from %d graphs (tau=%.3f, max edges %d)\n",
		len(feats), len(db), *tau, *maxEdges)
}
